//===- TypeInference.cpp - Hindley-Milner types via unification ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "types/TypeInference.h"

#include "fl/FLParser.h"
#include "reader/Parser.h"
#include "term/Symbol.h"
#include "term/TermCopy.h"
#include "term/TermStore.h"
#include "term/Unify.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace lpa;

const FuncType *TypeResult::find(const std::string &Name) const {
  for (const FuncType &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

bool TypeResult::allOk() const {
  return std::all_of(Functions.begin(), Functions.end(),
                     [](const FuncType &F) { return F.Ok; });
}

namespace {

/// Renders a type term with variables named A, B, C, ...
class TypeRenderer {
public:
  TypeRenderer(const SymbolTable &Syms, const TermStore &TS)
      : Syms(Syms), TS(TS) {}

  std::string render(TermRef T) {
    T = TS.deref(T);
    switch (TS.tag(T)) {
    case TermTag::Ref: {
      auto [It, _] = Names.emplace(T, Names.size());
      std::string N(1, static_cast<char>('A' + It->second % 26));
      if (It->second >= 26)
        N += std::to_string(It->second / 26);
      return N;
    }
    case TermTag::Atom:
      return Syms.name(TS.symbol(T));
    case TermTag::Int:
      return std::to_string(TS.intValue(T));
    case TermTag::Struct: {
      std::string Out = Syms.name(TS.symbol(T)) + "(";
      for (uint32_t I = 0, E = TS.arity(T); I < E; ++I) {
        if (I)
          Out += ", ";
        Out += render(TS.arg(T, I));
      }
      return Out + ")";
    }
    }
    return "?";
  }

private:
  const SymbolTable &Syms;
  const TermStore &TS;
  std::map<TermRef, size_t> Names;
};

/// The inference engine.
class Inferencer {
public:
  explicit Inferencer(const FLProgram &Program) : Program(Program) {}

  ErrorOr<TypeResult> run();

private:
  struct CtorSig {
    TermRef Result = InvalidTerm;
    std::vector<TermRef> Fields; // Templates; instantiate per use.
  };
  struct FuncSig {
    std::vector<TermRef> Args;
    TermRef Result = InvalidTerm;
    bool Generalized = false;
    bool Failed = false;
    std::string Error;
  };

  ErrorOr<bool> buildCtorSigs();
  const CtorSig *ctorSig(const std::string &Name, uint32_t Arity);
  /// Instantiates (renames apart) a constructor signature.
  CtorSig instantiateCtor(const CtorSig &Template);

  /// Fails the whole current SCC with \p Message attributed to \p Func.
  void fail(const std::string &Func, const std::string &Message);

  bool unifyTypes(TermRef A, TermRef B, const std::string &Func,
                  const std::string &Where);

  TermRef typeOfPattern(const FLPattern &P, const std::string &Func,
                        std::map<std::string, TermRef> &Env);
  TermRef typeOfExpr(const FLExpr &E, const std::string &Func,
                     std::map<std::string, TermRef> &Env);

  const FLProgram &Program;
  SymbolTable Syms;
  TermStore TS;
  std::map<std::pair<std::string, uint32_t>, CtorSig> CtorSigs;
  std::map<std::string, FuncSig> FuncSigs;
  std::set<std::string> CurrentScc;
};

void Inferencer::fail(const std::string &Func, const std::string &Message) {
  for (const std::string &F : CurrentScc) {
    FuncSig &S = FuncSigs[F];
    if (S.Failed)
      continue;
    S.Failed = true;
    S.Error = F == Func ? Message : "mutually recursive with ill-typed " +
                                        Func;
  }
}

ErrorOr<bool> Inferencer::buildCtorSigs() {
  // Builtins: lists and booleans.
  {
    TermRef A = TS.mkVar();
    TermRef ListA = TS.mkStruct(Syms.intern("list"),
                                std::span<const TermRef>(&A, 1));
    CtorSigs[{"nil", 0}] = {ListA, {}};
    TermRef B = TS.mkVar();
    TermRef ListB = TS.mkStruct(Syms.intern("list"),
                                std::span<const TermRef>(&B, 1));
    CtorSigs[{"cons", 2}] = {ListB, {B, ListB}};
    TermRef BoolT = TS.mkAtom(Syms.intern("bool"));
    CtorSigs[{"true", 0}] = {BoolT, {}};
    CtorSigs[{"false", 0}] = {BoolT, {}};
  }

  // Declared ADTs: reassemble one parseable term per declaration so type
  // variables shared between the head and the fields resolve by name.
  for (const FLAdtDecl &Adt : Program.Adts) {
    std::string Text = "'$sig'(";
    if (Adt.Params.empty()) {
      Text += Adt.Name;
    } else {
      Text += Adt.Name + "(";
      for (size_t I = 0; I < Adt.Params.size(); ++I)
        Text += (I ? "," : "") + Adt.Params[I];
      Text += ")";
    }
    for (const auto &Ctor : Adt.Ctors)
      for (const std::string &F : Ctor.Fields)
        Text += ", " + F;
    Text += ")";
    // Underscore-led names parse as Prolog variables, which is exactly
    // what the FLParser produced for type variables.
    auto Parsed = Parser::parseTerm(Syms, TS, Text);
    if (!Parsed)
      return Diagnostic("adt " + Adt.Name +
                        ": malformed type expression: " +
                        Parsed.getError().str());
    TermRef Sig = TS.deref(*Parsed);
    TermRef Result = TS.arg(Sig, 0);
    uint32_t Slot = 1;
    for (const auto &Ctor : Adt.Ctors) {
      CtorSig CS;
      CS.Result = Result;
      for (size_t I = 0; I < Ctor.Fields.size(); ++I)
        CS.Fields.push_back(TS.arg(Sig, Slot++));
      CtorSigs[{Ctor.Name, static_cast<uint32_t>(Ctor.Fields.size())}] =
          std::move(CS);
    }
  }
  return true;
}

const Inferencer::CtorSig *Inferencer::ctorSig(const std::string &Name,
                                               uint32_t Arity) {
  auto It = CtorSigs.find({Name, Arity});
  if (It != CtorSigs.end())
    return &It->second;
  // Undeclared constructor: structural fallback c(A1..Ak). Sound for
  // single-constructor types; grouping several constructors under one
  // type requires an adt declaration.
  CtorSig CS;
  std::vector<TermRef> Args;
  for (uint32_t I = 0; I < Arity; ++I)
    Args.push_back(TS.mkVar());
  SymbolId TySym = Syms.intern(Name + "_t");
  CS.Result = Arity == 0 ? TS.mkAtom(TySym) : TS.mkStruct(TySym, Args);
  CS.Fields = Args;
  auto [New, _] = CtorSigs.emplace(std::make_pair(Name, Arity),
                                   std::move(CS));
  return &New->second;
}

Inferencer::CtorSig Inferencer::instantiateCtor(const CtorSig &Template) {
  VarRenaming R;
  CtorSig Out;
  Out.Result = copyTerm(TS, Template.Result, TS, R);
  for (TermRef F : Template.Fields)
    Out.Fields.push_back(copyTerm(TS, F, TS, R));
  return Out;
}

bool Inferencer::unifyTypes(TermRef A, TermRef B, const std::string &Func,
                            const std::string &Where) {
  // Snapshot the terms for the error message before unification binds
  // them.
  TypeRenderer Pre(Syms, TS);
  std::string SA = Pre.render(A), SB = Pre.render(B);
  if (unify(TS, A, B, /*OccursCheck=*/true))
    return true;
  fail(Func, "cannot unify " + SA + " with " + SB + " in " + Where +
                 " (occur check or constructor clash)");
  return false;
}

TermRef Inferencer::typeOfPattern(const FLPattern &P, const std::string &Func,
                                  std::map<std::string, TermRef> &Env) {
  switch (P.K) {
  case FLPattern::Kind::Var: {
    TermRef V = TS.mkVar();
    Env[P.Name] = V;
    return V;
  }
  case FLPattern::Kind::IntLit:
    return TS.mkAtom(Syms.intern("int"));
  case FLPattern::Kind::Ctor: {
    CtorSig CS = instantiateCtor(
        *ctorSig(P.Name, static_cast<uint32_t>(P.Args.size())));
    for (size_t I = 0; I < P.Args.size(); ++I) {
      TermRef Sub = typeOfPattern(P.Args[I], Func, Env);
      if (!unifyTypes(Sub, CS.Fields[I], Func,
                      "pattern " + P.Name + "/" +
                          std::to_string(P.Args.size())))
        return CS.Result;
    }
    return CS.Result;
  }
  }
  return TS.mkVar();
}

TermRef Inferencer::typeOfExpr(const FLExpr &E, const std::string &Func,
                               std::map<std::string, TermRef> &Env) {
  switch (E.K) {
  case FLExpr::Kind::Var: {
    auto It = Env.find(E.Name);
    if (It != Env.end())
      return It->second;
    TermRef V = TS.mkVar();
    Env[E.Name] = V;
    return V;
  }
  case FLExpr::Kind::IntLit:
    return TS.mkAtom(Syms.intern("int"));
  case FLExpr::Kind::Ctor: {
    CtorSig CS = instantiateCtor(
        *ctorSig(E.Name, static_cast<uint32_t>(E.Args.size())));
    for (size_t I = 0; I < E.Args.size(); ++I) {
      TermRef Sub = typeOfExpr(E.Args[I], Func, Env);
      if (!unifyTypes(Sub, CS.Fields[I], Func,
                      "constructor " + E.Name))
        break;
    }
    return CS.Result;
  }
  case FLExpr::Kind::Prim: {
    TermRef IntT = TS.mkAtom(Syms.intern("int"));
    TermRef BoolT = TS.mkAtom(Syms.intern("bool"));
    bool Cmp = E.Name == "<" || E.Name == "=<" || E.Name == ">" ||
               E.Name == ">=";
    bool Eq = E.Name == "==" || E.Name == "\\==";
    if (Eq) {
      // Polymorphic equality: both sides one type, result bool.
      TermRef A = TS.mkVar();
      for (const FLExpr &Arg : E.Args)
        if (!unifyTypes(typeOfExpr(Arg, Func, Env), A, Func,
                        "equality " + E.Name))
          break;
      return BoolT;
    }
    for (const FLExpr &Arg : E.Args)
      if (!unifyTypes(typeOfExpr(Arg, Func, Env), IntT, Func,
                      "arithmetic " + E.Name))
        break;
    return Cmp ? BoolT : IntT;
  }
  case FLExpr::Kind::Call: {
    auto It = FuncSigs.find(E.Name);
    if (It == FuncSigs.end())
      return TS.mkVar(); // Undefined function; FLParser prevents this.
    FuncSig &Sig = It->second;
    if (Sig.Failed) {
      fail(Func, "calls ill-typed function " + E.Name);
      return TS.mkVar();
    }
    std::vector<TermRef> ArgTypes = Sig.Args;
    TermRef Result = Sig.Result;
    if (Sig.Generalized) {
      // Let-polymorphism: instantiate a fresh copy of the signature.
      VarRenaming R;
      for (TermRef &A : ArgTypes)
        A = copyTerm(TS, A, TS, R);
      Result = copyTerm(TS, Result, TS, R);
    }
    for (size_t I = 0; I < E.Args.size(); ++I)
      if (!unifyTypes(typeOfExpr(E.Args[I], Func, Env), ArgTypes[I], Func,
                      "call to " + E.Name))
        break;
    return Result;
  }
  }
  return TS.mkVar();
}

ErrorOr<TypeResult> Inferencer::run() {
  auto Built = buildCtorSigs();
  if (!Built)
    return Built.getError();

  // Signatures for every function.
  for (const auto &[Name, Arity] : Program.Functions) {
    FuncSig Sig;
    for (uint32_t I = 0; I < Arity; ++I)
      Sig.Args.push_back(TS.mkVar());
    Sig.Result = TS.mkVar();
    FuncSigs.emplace(Name, std::move(Sig));
  }

  // Call graph and SCCs (iterative Kosaraju would be overkill; function
  // counts are small, so a simple Tarjan with recursion is fine).
  std::map<std::string, std::set<std::string>> Calls;
  for (const FLEquation &Eq : Program.Equations) {
    std::function<void(const FLExpr &)> Walk = [&](const FLExpr &E) {
      if (E.K == FLExpr::Kind::Call)
        Calls[Eq.Func].insert(E.Name);
      for (const FLExpr &A : E.Args)
        Walk(A);
    };
    Walk(Eq.Rhs);
  }

  std::vector<std::string> Order; // Function names in definition order.
  for (const auto &[Name, Arity] : Program.Functions)
    Order.push_back(Name);

  // Tarjan.
  std::map<std::string, int> Index, Low;
  std::vector<std::string> Stack;
  std::set<std::string> OnStack;
  std::vector<std::vector<std::string>> Sccs;
  int Counter = 0;
  std::function<void(const std::string &)> Strong =
      [&](const std::string &V) {
        Index[V] = Low[V] = Counter++;
        Stack.push_back(V);
        OnStack.insert(V);
        for (const std::string &W : Calls[V]) {
          if (!FuncSigs.count(W))
            continue;
          if (!Index.count(W)) {
            Strong(W);
            Low[V] = std::min(Low[V], Low[W]);
          } else if (OnStack.count(W)) {
            Low[V] = std::min(Low[V], Index[W]);
          }
        }
        if (Low[V] == Index[V]) {
          std::vector<std::string> Scc;
          while (true) {
            std::string W = Stack.back();
            Stack.pop_back();
            OnStack.erase(W);
            Scc.push_back(W);
            if (W == V)
              break;
          }
          Sccs.push_back(std::move(Scc));
        }
      };
  for (const std::string &F : Order)
    if (!Index.count(F))
      Strong(F);
  // Tarjan emits SCCs callee-first, which is the processing order needed.

  for (const std::vector<std::string> &Scc : Sccs) {
    CurrentScc = std::set<std::string>(Scc.begin(), Scc.end());
    for (const FLEquation &Eq : Program.Equations) {
      if (!CurrentScc.count(Eq.Func))
        continue;
      FuncSig &Sig = FuncSigs[Eq.Func];
      if (Sig.Failed)
        continue;
      std::map<std::string, TermRef> Env;
      for (size_t I = 0; I < Eq.Params.size(); ++I) {
        TermRef PT = typeOfPattern(Eq.Params[I], Eq.Func, Env);
        if (Sig.Failed)
          break;
        if (!unifyTypes(PT, Sig.Args[I], Eq.Func,
                        "argument " + std::to_string(I + 1)))
          break;
      }
      if (Sig.Failed)
        continue;
      TermRef RhsT = typeOfExpr(Eq.Rhs, Eq.Func, Env);
      if (!Sig.Failed)
        unifyTypes(RhsT, Sig.Result, Eq.Func, "result");
    }
    for (const std::string &F : Scc)
      FuncSigs[F].Generalized = true;
  }

  TypeResult Result;
  for (const auto &[Name, Arity] : Program.Functions) {
    const FuncSig &Sig = FuncSigs[Name];
    FuncType FT;
    FT.Name = Name;
    FT.Arity = Arity;
    FT.Ok = !Sig.Failed;
    if (Sig.Failed) {
      FT.Error = Sig.Error;
    } else {
      TypeRenderer R(Syms, TS);
      std::string Args = "(";
      for (size_t I = 0; I < Sig.Args.size(); ++I) {
        if (I)
          Args += ", ";
        Args += R.render(Sig.Args[I]);
      }
      FT.Rendered = Args + ") -> " + R.render(Sig.Result);
    }
    Result.Functions.push_back(std::move(FT));
  }
  return Result;
}

} // namespace

ErrorOr<TypeResult> TypeInference::infer(const FLProgram &Program) {
  Inferencer I(Program);
  return I.run();
}

ErrorOr<TypeResult> TypeInference::inferText(std::string_view Source) {
  auto Program = FLParser::parse(Source);
  if (!Program)
    return Program.getError();
  return infer(*Program);
}
