//===- TypeInference.h - Hindley-Milner types via unification ---*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.1's constraint-domain example made concrete: Hindley-Milner
/// type analysis of FL programs, "formulated as the solution to type
/// equations, which are equations over the domain of equality
/// constraints". As the paper observes, tabled evaluation is not needed —
/// the equations are nonrecursive once recursion is handled monomorphic-
/// ally — and the only engine requirement is that unification perform the
/// occur check, which the term substrate provides as an option.
///
/// Functions are processed one call-graph SCC at a time (monomorphic
/// within an SCC, let-polymorphic across SCCs: signatures of finished
/// SCCs are instantiated fresh at each call site). Constructors come from
/// ":- adt(...)" declarations plus the builtins (lists, booleans,
/// integers).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TYPES_TYPEINFERENCE_H
#define LPA_TYPES_TYPEINFERENCE_H

#include "fl/FLAst.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace lpa {

/// Inferred type of one function (or the type error that stopped it).
struct FuncType {
  std::string Name;
  uint32_t Arity = 0;
  bool Ok = false;
  /// Rendered principal type, e.g. "(list(A), list(A)) -> list(A)".
  std::string Rendered;
  /// Diagnostic when !Ok (unification failure or occur check).
  std::string Error;
};

/// Result of typing a program.
struct TypeResult {
  std::vector<FuncType> Functions;
  const FuncType *find(const std::string &Name) const;
  /// True when every function typed successfully.
  bool allOk() const;
};

/// Infers principal types for all functions of an FL program.
class TypeInference {
public:
  /// Parses \p Source as FL and infers types.
  static ErrorOr<TypeResult> inferText(std::string_view Source);

  /// Infers types for an already-parsed program.
  static ErrorOr<TypeResult> infer(const FLProgram &Program);
};

} // namespace lpa

#endif // LPA_TYPES_TYPEINFERENCE_H
