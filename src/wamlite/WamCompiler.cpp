//===- WamCompiler.cpp - WAM-style clause compiler ----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "wamlite/WamCompiler.h"

#include "reader/Parser.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace lpa;

namespace {

/// Per-clause compilation context: variable classification and register
/// assignment.
class ClauseContext {
public:
  ClauseContext(const TermStore &Store, const SymbolTable &Symbols,
                std::vector<WamInstr> &Code)
      : Store(Store), Symbols(Symbols), Code(Code) {}

  const TermStore &Store;
  const SymbolTable &Symbols;
  std::vector<WamInstr> &Code;

  /// Permanent (environment) variables and their Y indexes.
  std::unordered_map<TermRef, uint32_t> Permanent;
  /// Temporary variables and their X registers.
  std::unordered_map<TermRef, uint32_t> Temporary;
  /// Variables already materialized (second occurrence => Value form).
  std::unordered_set<TermRef> Seen;
  uint32_t NextTemp = 0;

  /// \returns the (tagged) register of \p Var, allocating a temp X on
  /// first sight of a non-permanent variable.
  uint32_t regOf(TermRef Var) {
    auto P = Permanent.find(Var);
    if (P != Permanent.end())
      return P->second | WamInstr::YBit;
    auto T = Temporary.find(Var);
    if (T != Temporary.end())
      return T->second;
    uint32_t Reg = NextTemp++;
    Temporary.emplace(Var, Reg);
    return Reg;
  }

  void emit(WamInstr I) { Code.push_back(I); }
};

/// Emits the get/unify stream for one head argument.
void compileHeadArg(ClauseContext &Ctx, TermRef Arg, uint32_t ArgReg) {
  const TermStore &S = Ctx.Store;
  TermRef D = S.deref(Arg);
  switch (S.tag(D)) {
  case TermTag::Ref: {
    uint32_t Reg = Ctx.regOf(D);
    bool First = Ctx.Seen.insert(D).second;
    Ctx.emit({First ? WamOp::GetVariable : WamOp::GetValue, Reg, ArgReg, 0,
              0, 0});
    return;
  }
  case TermTag::Atom:
    Ctx.emit({WamOp::GetConstant, 0, ArgReg, S.symbol(D), 0, 0});
    return;
  case TermTag::Int:
    Ctx.emit({WamOp::GetInteger, 0, ArgReg, 0, 0, S.intValue(D)});
    return;
  case TermTag::Struct:
    break;
  }

  // Breadth-first flattening: nested structures drop into fresh temps that
  // are matched by their own later get_structure.
  std::deque<std::pair<TermRef, uint32_t>> Queue{{D, ArgReg}};
  while (!Queue.empty()) {
    auto [T, Reg] = Queue.front();
    Queue.pop_front();
    Ctx.emit({WamOp::GetStructure, Reg, 0, S.symbol(T), S.arity(T), 0});
    for (uint32_t I = 0, E = S.arity(T); I < E; ++I) {
      TermRef A = S.deref(S.arg(T, I));
      switch (S.tag(A)) {
      case TermTag::Ref: {
        uint32_t VReg = Ctx.regOf(A);
        bool First = Ctx.Seen.insert(A).second;
        Ctx.emit({First ? WamOp::UnifyVariable : WamOp::UnifyValue, VReg, 0,
                  0, 0, 0});
        break;
      }
      case TermTag::Atom:
        Ctx.emit({WamOp::UnifyConstant, 0, 0, S.symbol(A), 0, 0});
        break;
      case TermTag::Int:
        Ctx.emit({WamOp::UnifyInteger, 0, 0, 0, 0, S.intValue(A)});
        break;
      case TermTag::Struct: {
        uint32_t Temp = Ctx.NextTemp++;
        Ctx.emit({WamOp::UnifyVariable, Temp, 0, 0, 0, 0});
        Queue.push_back({A, Temp});
        break;
      }
      }
    }
  }
}

/// Builds the set stream of a structure already scheduled into \p Reg;
/// nested structures must have been built into temps beforehand.
void emitSetArgs(ClauseContext &Ctx, TermRef T,
                 const std::unordered_map<TermRef, uint32_t> &SubTemps) {
  const TermStore &S = Ctx.Store;
  for (uint32_t I = 0, E = S.arity(T); I < E; ++I) {
    TermRef A = S.deref(S.arg(T, I));
    switch (S.tag(A)) {
    case TermTag::Ref: {
      uint32_t VReg = Ctx.regOf(A);
      bool First = Ctx.Seen.insert(A).second;
      Ctx.emit({First ? WamOp::SetVariable : WamOp::SetValue, VReg, 0, 0, 0,
                0});
      break;
    }
    case TermTag::Atom:
      Ctx.emit({WamOp::SetConstant, 0, 0, S.symbol(A), 0, 0});
      break;
    case TermTag::Int:
      Ctx.emit({WamOp::SetInteger, 0, 0, 0, 0, S.intValue(A)});
      break;
    case TermTag::Struct:
      Ctx.emit({WamOp::SetValue, SubTemps.at(A), 0, 0, 0, 0});
      break;
    }
  }
}

/// Builds \p T bottom-up; \returns the temp register holding it.
uint32_t buildStructure(ClauseContext &Ctx, TermRef T) {
  const TermStore &S = Ctx.Store;
  std::unordered_map<TermRef, uint32_t> SubTemps;
  for (uint32_t I = 0, E = S.arity(T); I < E; ++I) {
    TermRef A = S.deref(S.arg(T, I));
    if (S.tag(A) == TermTag::Struct)
      SubTemps.emplace(A, buildStructure(Ctx, A));
  }
  uint32_t Reg = Ctx.NextTemp++;
  Ctx.emit({WamOp::PutStructure, Reg, 0, S.symbol(T), S.arity(T), 0});
  emitSetArgs(Ctx, T, SubTemps);
  return Reg;
}

/// Emits the put stream for one body-goal argument.
void compileBodyArg(ClauseContext &Ctx, TermRef Arg, uint32_t ArgReg) {
  const TermStore &S = Ctx.Store;
  TermRef D = S.deref(Arg);
  switch (S.tag(D)) {
  case TermTag::Ref: {
    uint32_t Reg = Ctx.regOf(D);
    bool First = Ctx.Seen.insert(D).second;
    Ctx.emit({First ? WamOp::PutVariable : WamOp::PutValue, Reg, ArgReg, 0,
              0, 0});
    return;
  }
  case TermTag::Atom:
    Ctx.emit({WamOp::PutConstant, 0, ArgReg, S.symbol(D), 0, 0});
    return;
  case TermTag::Int:
    Ctx.emit({WamOp::PutInteger, 0, ArgReg, 0, 0, S.intValue(D)});
    return;
  case TermTag::Struct: {
    // Sub-structures first, then the top structure straight into A<Arg>.
    std::unordered_map<TermRef, uint32_t> SubTemps;
    for (uint32_t I = 0, E = S.arity(D); I < E; ++I) {
      TermRef A = S.deref(S.arg(D, I));
      if (S.tag(A) == TermTag::Struct)
        SubTemps.emplace(A, buildStructure(Ctx, A));
    }
    Ctx.emit({WamOp::PutStructure, ArgReg, ArgReg, S.symbol(D), S.arity(D),
              0});
    emitSetArgs(Ctx, D, SubTemps);
    return;
  }
  }
}

/// Collects the distinct variables of \p T into \p Vars.
void varsOf(const TermStore &S, TermRef T, std::vector<TermRef> &Vars) {
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = S.deref(Work.back());
    Work.pop_back();
    switch (S.tag(Cur)) {
    case TermTag::Ref:
      if (std::find(Vars.begin(), Vars.end(), Cur) == Vars.end())
        Vars.push_back(Cur);
      break;
    case TermTag::Struct:
      for (uint32_t I = S.arity(Cur); I-- > 0;)
        Work.push_back(S.arg(Cur, I));
      break;
    default:
      break;
    }
  }
}

} // namespace

ErrorOr<CompiledClause> WamCompiler::compileClause(const TermStore &Store,
                                                   TermRef Clause) {
  TermRef D = Store.deref(Clause);
  TermRef Head = D;
  std::vector<TermRef> Goals;
  if (Store.tag(D) == TermTag::Struct && Store.symbol(D) == Symbols.Neck &&
      Store.arity(D) == 2) {
    Head = Store.deref(Store.arg(D, 0));
    flattenConjunction(Store, Symbols, Store.arg(D, 1), Goals);
  }
  TermTag HT = Store.tag(Head);
  if (HT != TermTag::Atom && HT != TermTag::Struct)
    return Diagnostic("clause head must be an atom or compound term");

  CompiledClause Out;
  Out.Pred = {Store.symbol(Head), Store.arity(Head)};

  ClauseContext Ctx(Store, Symbols, Out.Code);

  // Variable classification (Ait-Kaci): permanent iff it occurs in more
  // than one chunk, chunk 0 being head + first body goal.
  {
    std::unordered_map<TermRef, std::unordered_set<size_t>> Chunks;
    std::vector<TermRef> Vars;
    varsOf(Store, Head, Vars);
    if (!Goals.empty())
      varsOf(Store, Goals[0], Vars);
    for (TermRef V : Vars)
      Chunks[V].insert(0);
    for (size_t G = 1; G < Goals.size(); ++G) {
      std::vector<TermRef> GVars;
      varsOf(Store, Goals[G], GVars);
      for (TermRef V : GVars)
        Chunks[V].insert(G);
    }
    // Y indexes in deterministic order: scan head then goals.
    std::vector<TermRef> Order;
    varsOf(Store, Head, Order);
    for (TermRef G : Goals)
      varsOf(Store, G, Order);
    for (TermRef V : Order)
      if (Chunks[V].size() > 1 && !Ctx.Permanent.count(V))
        Ctx.Permanent.emplace(V, static_cast<uint32_t>(Ctx.Permanent.size()));
  }
  Out.NumPermanent = static_cast<uint32_t>(Ctx.Permanent.size());

  // Temporaries start above the widest argument-register window.
  uint32_t MaxArgs = Store.arity(Head);
  for (TermRef G : Goals) {
    TermRef GD = Store.deref(G);
    if (Store.tag(GD) == TermTag::Struct)
      MaxArgs = std::max(MaxArgs, Store.arity(GD));
  }
  Ctx.NextTemp = MaxArgs;

  if (Out.NumPermanent > 0)
    Ctx.emit({WamOp::Allocate, 0, 0, 0, 0,
              static_cast<int64_t>(Out.NumPermanent)});

  // Head: get phase.
  for (uint32_t I = 0, E = Store.arity(Head); I < E; ++I)
    compileHeadArg(Ctx, Store.arg(Head, I), I);

  // Body: put + call per goal, last-call optimized.
  for (size_t G = 0; G < Goals.size(); ++G) {
    TermRef GD = Store.deref(Goals[G]);
    TermTag GT = Store.tag(GD);
    if (GT != TermTag::Atom && GT != TermTag::Struct)
      return Diagnostic("cannot compile a variable goal");
    for (uint32_t I = 0, E = Store.arity(GD); I < E; ++I)
      compileBodyArg(Ctx, Store.arg(GD, I), I);
    bool Last = G + 1 == Goals.size();
    if (Last && Out.NumPermanent > 0)
      Ctx.emit({WamOp::Deallocate, 0, 0, 0, 0, 0});
    Ctx.emit({Last ? WamOp::Execute : WamOp::Call, 0, 0, Store.symbol(GD),
              Store.arity(GD), 0});
  }
  if (Goals.empty())
    Ctx.emit({WamOp::Proceed, 0, 0, 0, 0, 0});

  Out.NumTemporaries = Ctx.NextTemp;
  return Out;
}

ErrorOr<CompiledProgram> WamCompiler::compileText(std::string_view Source) {
  TermStore Store;
  auto Clauses = Parser::parseProgram(Symbols, Store, Source);
  if (!Clauses)
    return Clauses.getError();
  CompiledProgram Out;
  for (TermRef C : *Clauses) {
    TermRef D = Store.deref(C);
    // Skip directives.
    if (Store.tag(D) == TermTag::Struct && Store.symbol(D) == Symbols.Neck &&
        Store.arity(D) == 1)
      continue;
    auto Compiled = compileClause(Store, C);
    if (!Compiled)
      return Compiled.getError();
    Out.Clauses.push_back(std::move(*Compiled));
  }
  return Out;
}

std::string WamCompiler::disassemble(const CompiledClause &C) const {
  std::string Out = Symbols.name(C.Pred.Sym) + "/" +
                    std::to_string(C.Pred.Arity) + ":\n";
  auto Reg = [](uint32_t R) {
    return (WamInstr::isYReg(R) ? "Y" : "X") +
           std::to_string(WamInstr::regIndex(R));
  };
  for (const WamInstr &I : C.Code) {
    Out += "  ";
    auto FA = [&]() {
      return Symbols.name(I.Sym) + "/" + std::to_string(I.Arity);
    };
    switch (I.Op) {
    case WamOp::GetVariable:
      Out += "get_variable " + Reg(I.Reg) + ", A" + std::to_string(I.Arg);
      break;
    case WamOp::GetValue:
      Out += "get_value " + Reg(I.Reg) + ", A" + std::to_string(I.Arg);
      break;
    case WamOp::GetConstant:
      Out += "get_constant " + Symbols.name(I.Sym) + ", A" +
             std::to_string(I.Arg);
      break;
    case WamOp::GetInteger:
      Out += "get_integer " + std::to_string(I.Imm) + ", A" +
             std::to_string(I.Arg);
      break;
    case WamOp::GetStructure:
      Out += "get_structure " + FA() + ", " + Reg(I.Reg);
      break;
    case WamOp::UnifyVariable:
      Out += "unify_variable " + Reg(I.Reg);
      break;
    case WamOp::UnifyValue:
      Out += "unify_value " + Reg(I.Reg);
      break;
    case WamOp::UnifyConstant:
      Out += "unify_constant " + Symbols.name(I.Sym);
      break;
    case WamOp::UnifyInteger:
      Out += "unify_integer " + std::to_string(I.Imm);
      break;
    case WamOp::UnifyVoid:
      Out += "unify_void";
      break;
    case WamOp::PutVariable:
      Out += "put_variable " + Reg(I.Reg) + ", A" + std::to_string(I.Arg);
      break;
    case WamOp::PutValue:
      Out += "put_value " + Reg(I.Reg) + ", A" + std::to_string(I.Arg);
      break;
    case WamOp::PutConstant:
      Out += "put_constant " + Symbols.name(I.Sym) + ", A" +
             std::to_string(I.Arg);
      break;
    case WamOp::PutInteger:
      Out += "put_integer " + std::to_string(I.Imm) + ", A" +
             std::to_string(I.Arg);
      break;
    case WamOp::PutStructure:
      Out += "put_structure " + FA() + ", " + Reg(I.Reg);
      break;
    case WamOp::SetVariable:
      Out += "set_variable " + Reg(I.Reg);
      break;
    case WamOp::SetValue:
      Out += "set_value " + Reg(I.Reg);
      break;
    case WamOp::SetConstant:
      Out += "set_constant " + Symbols.name(I.Sym);
      break;
    case WamOp::SetInteger:
      Out += "set_integer " + std::to_string(I.Imm);
      break;
    case WamOp::SetVoid:
      Out += "set_void";
      break;
    case WamOp::Allocate:
      Out += "allocate " + std::to_string(I.Imm);
      break;
    case WamOp::Deallocate:
      Out += "deallocate";
      break;
    case WamOp::Call:
      Out += "call " + FA();
      break;
    case WamOp::Execute:
      Out += "execute " + FA();
      break;
    case WamOp::Proceed:
      Out += "proceed";
      break;
    }
    Out += "\n";
  }
  return Out;
}
