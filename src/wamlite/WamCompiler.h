//===- WamCompiler.h - WAM-style clause compiler ----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A WAM-style clause compiler. Section 4 of the paper weighs two ways to
/// prepare the (abstract) program for evaluation: full compilation into
/// WAM code versus loading it as dynamic code and interpreting — and
/// argues for the latter because preprocessing dominates total analysis
/// time. Our engine interprets dynamic code (the paper's chosen
/// configuration); this module implements the *other* arm of that
/// tradeoff, compiling clauses into flattened register-machine
/// instructions, so Table 1's "compile time" denominator and the
/// compile-vs-assert ablation are measurable rather than notional.
///
/// The instruction set is the classic WAM core (Ait-Kaci's tutorial
/// reconstruction, reference [2] of the paper): get/unify instructions
/// for head argument matching, put/set for body argument construction,
/// call/execute/proceed for control, and allocate/deallocate for
/// permanent-variable environments.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_WAMLITE_WAMCOMPILER_H
#define LPA_WAMLITE_WAMCOMPILER_H

#include "engine/Database.h"
#include "support/Error.h"
#include "term/Symbol.h"
#include "term/TermStore.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lpa {

/// WAM-lite opcodes.
enum class WamOp : uint8_t {
  // Head argument matching.
  GetVariable, ///< get_variable Reg, A<Arg>
  GetValue,    ///< get_value Reg, A<Arg>
  GetConstant, ///< get_constant Sym, A<Arg>
  GetInteger,  ///< get_integer Imm, A<Arg>
  GetStructure,///< get_structure Sym/Arity, A<Arg> (begins a unify stream)
  // Structure argument unification (read/write mode stream).
  UnifyVariable, ///< unify_variable Reg
  UnifyValue,    ///< unify_value Reg
  UnifyConstant, ///< unify_constant Sym
  UnifyInteger,  ///< unify_integer Imm
  UnifyVoid,     ///< unify_void (anonymous)
  // Body argument construction.
  PutVariable, ///< put_variable Reg, A<Arg>
  PutValue,    ///< put_value Reg, A<Arg>
  PutConstant, ///< put_constant Sym, A<Arg>
  PutInteger,  ///< put_integer Imm, A<Arg>
  PutStructure,///< put_structure Sym/Arity, Reg (begins a set stream)
  SetVariable, ///< set_variable Reg
  SetValue,    ///< set_value Reg
  SetConstant, ///< set_constant Sym
  SetInteger,  ///< set_integer Imm
  SetVoid,     ///< set_void
  // Control.
  Allocate,   ///< allocate Imm permanent slots
  Deallocate, ///< deallocate
  Call,       ///< call Sym/Arity
  Execute,    ///< execute Sym/Arity (last call optimization)
  Proceed,    ///< proceed (fact / end of unit clause)
};

/// One instruction. Register operands use a tagged encoding: X registers
/// are plain indexes, Y (permanent) registers have the high bit set.
struct WamInstr {
  WamOp Op;
  uint32_t Reg = 0;  ///< X/Y register (see isYReg/regIndex).
  uint32_t Arg = 0;  ///< Argument-register index (A registers).
  SymbolId Sym = 0;  ///< Functor/constant symbol.
  uint32_t Arity = 0;
  int64_t Imm = 0;   ///< Integer payload.

  static constexpr uint32_t YBit = 1u << 31;
  static bool isYReg(uint32_t R) { return (R & YBit) != 0; }
  static uint32_t regIndex(uint32_t R) { return R & ~YBit; }
};

/// Compiled form of one clause.
struct CompiledClause {
  PredKey Pred;
  std::vector<WamInstr> Code;
  uint32_t NumPermanent = 0; ///< Environment size (Y registers).
  uint32_t NumTemporaries = 0;
};

/// Compiled form of a whole program.
struct CompiledProgram {
  std::vector<CompiledClause> Clauses;

  size_t totalInstructions() const {
    size_t N = 0;
    for (const CompiledClause &C : Clauses)
      N += C.Code.size();
    return N;
  }
  /// Approximate code-space bytes.
  size_t codeBytes() const {
    return totalInstructions() * sizeof(WamInstr);
  }
};

/// Compiles clause terms into WAM-lite code.
class WamCompiler {
public:
  explicit WamCompiler(SymbolTable &Symbols) : Symbols(Symbols) {}

  /// Compiles one clause term (fact or Head :- Body) from \p Store.
  ErrorOr<CompiledClause> compileClause(const TermStore &Store,
                                        TermRef Clause);

  /// Parses and compiles a whole program (directives are skipped).
  ErrorOr<CompiledProgram> compileText(std::string_view Source);

  /// Renders \p C as classic WAM assembly text.
  std::string disassemble(const CompiledClause &C) const;

private:
  SymbolTable &Symbols;
};

} // namespace lpa

#endif // LPA_WAMLITE_WAMCOMPILER_H
