//===- WamMachine.cpp - Executor for WAM-lite code -----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "wamlite/WamMachine.h"

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "term/Unify.h"

using namespace lpa;

WamMachine::WamMachine(SymbolTable &Symbols, const CompiledProgram &Program)
    : Symbols(Symbols), Builtins(Symbols) {
  for (const CompiledClause &C : Program.Clauses)
    Preds[key(C.Pred.Sym, C.Pred.Arity)].push_back(&C);
}

namespace {

/// Structure-argument cursor: the WAM's S pointer. With skeleton
/// building, write mode degenerates into read mode over fresh variables,
/// so one instruction path serves both.
struct SPointer {
  TermRef Struct = InvalidTerm;
  uint32_t Next = 0;
};

} // namespace

bool WamMachine::runClause(const CompiledClause &C,
                           const std::vector<TermRef> &Args, size_t Depth,
                           const std::function<bool()> &OnSolution) {
  // Register file: A/X registers share one space (A_i = X_i).
  std::vector<TermRef> X(std::max<size_t>(C.NumTemporaries, Args.size()) + 1,
                         InvalidTerm);
  for (size_t I = 0; I < Args.size(); ++I)
    X[I] = Args[I];
  std::vector<TermRef> Y;
  SPointer S;

  auto RegRead = [&](uint32_t R) -> TermRef & {
    if (WamInstr::isYReg(R))
      return Y[WamInstr::regIndex(R)];
    return X[R];
  };

  // Executes instructions from \p PC; returns true iff a callback asked
  // to stop (failure returns false after the caller's undo).
  std::function<bool(size_t)> Run = [&](size_t PC) -> bool {
    for (; PC < C.Code.size(); ++PC) {
      const WamInstr &I = C.Code[PC];
      switch (I.Op) {
      case WamOp::Allocate:
        Y.assign(static_cast<size_t>(I.Imm), InvalidTerm);
        break;
      case WamOp::Deallocate:
        break; // Environments are C++ locals.

      case WamOp::GetVariable:
        RegRead(I.Reg) = X[I.Arg];
        break;
      case WamOp::GetValue:
        if (!unify(Heap, RegRead(I.Reg), X[I.Arg]))
          return false;
        break;
      case WamOp::GetConstant: {
        TermRef A = Heap.deref(X[I.Arg]);
        if (Heap.tag(A) == TermTag::Ref)
          Heap.bind(A, Heap.mkAtom(I.Sym));
        else if (!(Heap.tag(A) == TermTag::Atom && Heap.symbol(A) == I.Sym))
          return false;
        break;
      }
      case WamOp::GetInteger: {
        TermRef A = Heap.deref(X[I.Arg]);
        if (Heap.tag(A) == TermTag::Ref)
          Heap.bind(A, Heap.mkInt(I.Imm));
        else if (!(Heap.tag(A) == TermTag::Int &&
                   Heap.intValue(A) == I.Imm))
          return false;
        break;
      }
      case WamOp::GetStructure: {
        TermRef A = Heap.deref(RegRead(I.Reg));
        if (Heap.tag(A) == TermTag::Ref) {
          // Write mode: bind a skeleton; unify ops then fill fresh slots.
          std::vector<TermRef> Slots;
          for (uint32_t K = 0; K < I.Arity; ++K)
            Slots.push_back(Heap.mkVar());
          TermRef Skel = Heap.mkStruct(I.Sym, Slots);
          Heap.bind(A, Skel);
          S = {Skel, 0};
        } else if (Heap.tag(A) == TermTag::Struct &&
                   Heap.symbol(A) == I.Sym && Heap.arity(A) == I.Arity) {
          S = {A, 0}; // Read mode.
        } else {
          return false;
        }
        break;
      }
      case WamOp::UnifyVariable:
        RegRead(I.Reg) = Heap.arg(S.Struct, S.Next++);
        break;
      case WamOp::UnifyValue:
        if (!unify(Heap, RegRead(I.Reg), Heap.arg(S.Struct, S.Next++)))
          return false;
        break;
      case WamOp::UnifyConstant: {
        TermRef Slot = Heap.deref(Heap.arg(S.Struct, S.Next++));
        if (Heap.tag(Slot) == TermTag::Ref)
          Heap.bind(Slot, Heap.mkAtom(I.Sym));
        else if (!(Heap.tag(Slot) == TermTag::Atom &&
                   Heap.symbol(Slot) == I.Sym))
          return false;
        break;
      }
      case WamOp::UnifyInteger: {
        TermRef Slot = Heap.deref(Heap.arg(S.Struct, S.Next++));
        if (Heap.tag(Slot) == TermTag::Ref)
          Heap.bind(Slot, Heap.mkInt(I.Imm));
        else if (!(Heap.tag(Slot) == TermTag::Int &&
                   Heap.intValue(Slot) == I.Imm))
          return false;
        break;
      }
      case WamOp::UnifyVoid:
        ++S.Next;
        break;

      case WamOp::PutVariable: {
        TermRef V = Heap.mkVar();
        RegRead(I.Reg) = V;
        X[I.Arg] = V;
        break;
      }
      case WamOp::PutValue:
        X[I.Arg] = RegRead(I.Reg);
        break;
      case WamOp::PutConstant:
        X[I.Arg] = Heap.mkAtom(I.Sym);
        break;
      case WamOp::PutInteger:
        X[I.Arg] = Heap.mkInt(I.Imm);
        break;
      case WamOp::PutStructure: {
        std::vector<TermRef> Slots;
        for (uint32_t K = 0; K < I.Arity; ++K)
          Slots.push_back(Heap.mkVar());
        TermRef Skel = Heap.mkStruct(I.Sym, Slots);
        RegRead(I.Reg) = Skel;
        S = {Skel, 0};
        break;
      }
      case WamOp::SetVariable:
        RegRead(I.Reg) = Heap.arg(S.Struct, S.Next++);
        break;
      case WamOp::SetValue:
        if (!unify(Heap, Heap.arg(S.Struct, S.Next++), RegRead(I.Reg)))
          return false;
        break;
      case WamOp::SetConstant: {
        TermRef Slot = Heap.arg(S.Struct, S.Next++);
        if (!unify(Heap, Slot, Heap.mkAtom(I.Sym)))
          return false;
        break;
      }
      case WamOp::SetInteger: {
        TermRef Slot = Heap.arg(S.Struct, S.Next++);
        if (!unify(Heap, Slot, Heap.mkInt(I.Imm)))
          return false;
        break;
      }
      case WamOp::SetVoid:
        ++S.Next;
        break;

      case WamOp::Proceed:
        return OnSolution();

      case WamOp::Call:
      case WamOp::Execute: {
        std::vector<TermRef> CallArgs(X.begin(), X.begin() + I.Arity);

        // Builtins execute on the argument registers.
        BuiltinKind BK = Builtins.classify(I.Sym, I.Arity);
        if (BK != BuiltinKind::None) {
          bool Ok = false;
          switch (BK) {
          case BuiltinKind::True:
            Ok = true;
            break;
          case BuiltinKind::Fail:
            return false;
          case BuiltinKind::Unify:
            Ok = unify(Heap, CallArgs[0], CallArgs[1]);
            break;
          case BuiltinKind::Equal:
            Ok = termsEqual(Heap, CallArgs[0], CallArgs[1]);
            break;
          case BuiltinKind::NotEqual:
            Ok = !termsEqual(Heap, CallArgs[0], CallArgs[1]);
            break;
          case BuiltinKind::Is: {
            auto V = evalArith(Heap, Symbols, CallArgs[1]);
            Ok = V && unify(Heap, CallArgs[0], Heap.mkInt(*V));
            break;
          }
          case BuiltinKind::Lt:
          case BuiltinKind::Le:
          case BuiltinKind::Gt:
          case BuiltinKind::Ge:
          case BuiltinKind::ArithEq:
          case BuiltinKind::ArithNe: {
            auto A = evalArith(Heap, Symbols, CallArgs[0]);
            auto B = evalArith(Heap, Symbols, CallArgs[1]);
            if (!A || !B)
              return false;
            switch (BK) {
            case BuiltinKind::Lt: Ok = *A < *B; break;
            case BuiltinKind::Le: Ok = *A <= *B; break;
            case BuiltinKind::Gt: Ok = *A > *B; break;
            case BuiltinKind::Ge: Ok = *A >= *B; break;
            case BuiltinKind::ArithEq: Ok = *A == *B; break;
            default: Ok = *A != *B; break;
            }
            break;
          }
          default:
            // Control constructs are outside the compiled pure subset.
            return false;
          }
          if (!Ok)
            return false;
          if (I.Op == WamOp::Execute)
            return OnSolution();
          break; // Continue after the Call.
        }

        // User predicate: recurse over its compiled clauses.
        auto It = Preds.find(key(I.Sym, I.Arity));
        if (It == Preds.end())
          return false;
        if (Depth > 20000)
          return false; // Emergency brake for runaway recursion.

        const std::function<bool()> Cont =
            I.Op == WamOp::Execute
                ? OnSolution
                : std::function<bool()>([&, PC]() { return Run(PC + 1); });
        for (const CompiledClause *Callee : It->second) {
          auto M = Heap.mark();
          bool Stop = runClause(*Callee, CallArgs, Depth + 1, Cont);
          Heap.undoTo(M);
          if (Stop)
            return true;
        }
        return false; // All alternatives of the call exhausted.
      }
      }
    }
    return false; // Fell off the end (no Proceed): treat as failure.
  };

  return Run(0);
}

size_t WamMachine::solve(TermRef Goal, const std::function<bool()> &OnSolution) {
  TermRef G = Heap.deref(Goal);
  TermTag T = Heap.tag(G);
  if (T != TermTag::Atom && T != TermTag::Struct)
    return 0;

  std::vector<TermRef> Args;
  for (uint32_t I = 0, E = Heap.arity(G); I < E; ++I)
    Args.push_back(Heap.arg(G, I));

  size_t Count = 0;
  auto Wrapped = [&]() -> bool {
    ++Count;
    return OnSolution ? OnSolution() : false;
  };

  auto It = Preds.find(key(Heap.symbol(G), Heap.arity(G)));
  if (It == Preds.end())
    return 0;
  for (const CompiledClause *C : It->second) {
    auto M = Heap.mark();
    bool Stop = runClause(*C, Args, 0, Wrapped);
    Heap.undoTo(M);
    if (Stop)
      break;
  }
  return Count;
}

ErrorOr<size_t> WamMachine::solveText(std::string_view GoalText,
                                      const std::function<bool()> &OnSolution) {
  auto Goal = Parser::parseTerm(Symbols, Heap, GoalText);
  if (!Goal)
    return Goal.getError();
  return solve(*Goal, OnSolution);
}
