//===- WamMachine.h - Executor for WAM-lite code ----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes WAM-lite code: the "full compilation" arm of Section 4's
/// tradeoff, complete with evaluation. Head matching runs the compiled
/// get/unify streams with the classic read/write modes (no head-term
/// copying — the WAM's core win over clause-renaming interpretation);
/// body goals are built by put/set streams and solved by recursion over
/// the compiled clauses with trail-based backtracking.
///
/// Scope: the pure subset plus arithmetic and comparison builtins — what
/// the Figure-1/Figure-3 abstract programs need, minus tabling (XSB
/// compiled code shares the tabling engine; here the executor serves the
/// compile-vs-interpret evaluation measurement, so plain SLD suffices).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_WAMLITE_WAMMACHINE_H
#define LPA_WAMLITE_WAMMACHINE_H

#include "engine/Builtins.h"
#include "wamlite/WamCompiler.h"

#include <functional>
#include <unordered_map>

namespace lpa {

/// Executes a CompiledProgram.
class WamMachine {
public:
  WamMachine(SymbolTable &Symbols, const CompiledProgram &Program);

  /// The heap in which callers build query goals.
  TermStore &store() { return Heap; }

  /// Proves \p Goal (a term in store()); calls \p OnSolution per solution
  /// with bindings in place (return true to stop). \returns the number of
  /// solutions.
  size_t solve(TermRef Goal, const std::function<bool()> &OnSolution);

  /// Parses and proves \p GoalText.
  ErrorOr<size_t> solveText(std::string_view GoalText,
                            const std::function<bool()> &OnSolution);

private:
  /// Solves one goal term; recursion depth doubles as an emergency brake.
  bool solveGoal(TermRef Goal, size_t Depth,
                 const std::function<bool()> &OnSolution);

  /// Runs one clause against argument registers \p Args; on head match,
  /// solves the body and calls \p OnSolution at the end.
  bool runClause(const CompiledClause &C, const std::vector<TermRef> &Args,
                 size_t Depth, const std::function<bool()> &OnSolution);

  SymbolTable &Symbols;
  BuiltinTable Builtins;
  TermStore Heap;
  std::unordered_map<uint64_t, std::vector<const CompiledClause *>> Preds;

  static uint64_t key(SymbolId Sym, uint32_t Arity) {
    return (uint64_t(Sym) << 32) | Arity;
  }
};

} // namespace lpa

#endif // LPA_WAMLITE_WAMMACHINE_H
