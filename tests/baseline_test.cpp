//===- baseline_test.cpp - GAIA-like baseline tests --------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Table 2's premise is that XSB and GAIA "implement the same analysis" and
// produce identical results; these tests enforce that property between our
// tabled-engine analyzer and the special-purpose baseline.
//
//===----------------------------------------------------------------------===//

#include "baseline/GaiaLike.h"
#include "prop/Groundness.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

BaselineResult analyzeBaseline(const char *Source, bool Seminaive = true) {
  SymbolTable Syms;
  GaiaLikeAnalyzer::Options Opts;
  Opts.Seminaive = Seminaive;
  GaiaLikeAnalyzer A(Syms, Opts);
  auto R = A.analyze(Source);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  return R ? std::move(*R) : BaselineResult();
}

GroundnessResult analyzeEngine(const char *Source) {
  SymbolTable Syms;
  GroundnessAnalyzer A(Syms);
  auto R = A.analyze(Source);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  return R ? std::move(*R) : GroundnessResult();
}

void expectIdenticalResults(const char *Source) {
  auto Engine = analyzeEngine(Source);
  auto Baseline = analyzeBaseline(Source);
  ASSERT_EQ(Engine.Predicates.size(), Baseline.Predicates.size());
  for (size_t I = 0; I < Engine.Predicates.size(); ++I) {
    const PredGroundness &E = Engine.Predicates[I];
    const PredGroundness &B = Baseline.Predicates[I];
    EXPECT_EQ(E.Name, B.Name);
    EXPECT_EQ(E.SuccessSet, B.SuccessSet)
        << E.Name << "/" << E.Arity << ": engine "
        << formatTruthTable(E.SuccessSet) << " vs baseline "
        << formatTruthTable(B.SuccessSet);
  }
}

TEST(Baseline, AppendMatchesFigure2) {
  auto R = analyzeBaseline(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  const PredGroundness *Ap = R.find("ap", 3);
  ASSERT_NE(Ap, nullptr);
  TruthTable Expected;
  Expected.insert(BoolTuple{1, 1, 1});
  Expected.insert(BoolTuple{1, 0, 0});
  Expected.insert(BoolTuple{0, 1, 0});
  Expected.insert(BoolTuple{0, 0, 0});
  EXPECT_EQ(Ap->SuccessSet, Expected);
}

TEST(Baseline, IdenticalToEngineOnFacts) {
  expectIdenticalResults("p(a, b). p(X, c). q(f(X), X).");
}

TEST(Baseline, IdenticalToEngineOnAppend) {
  expectIdenticalResults(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
}

TEST(Baseline, IdenticalToEngineOnQuicksort) {
  expectIdenticalResults(R"(
    qsort([], []).
    qsort([X|Xs], S) :-
        part(Xs, X, L, G), qsort(L, SL), qsort(G, SG),
        app(SL, [X|SG], S).
    part([], _, [], []).
    part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
    part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
  )");
}

TEST(Baseline, IdenticalToEngineOnMutualRecursion) {
  expectIdenticalResults(R"(
    even(0).
    even(N) :- N > 0, M is N - 1, odd(M).
    odd(N) :- N > 0, M is N - 1, even(M).
  )");
}

TEST(Baseline, IdenticalToEngineOnNonLinearHeads) {
  expectIdenticalResults("p(X, X). q(X, Y) :- p(X, Y), r(Y). r(a).");
}

TEST(Baseline, IdenticalToEngineOnFailingPredicates) {
  expectIdenticalResults("p(X) :- fail. q(X) :- p(X). r(a) :- q(b).");
}

TEST(Baseline, IdenticalToEngineOnExplicitUnification) {
  expectIdenticalResults(R"(
    p(X, Y) :- X = f(Y, a).
    s(X) :- X = g(Z), t(Z).
    t(b).
  )");
}

TEST(Baseline, NaiveAndSeminaiveAgree) {
  const char *Prog = R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    e(a, b). e(b, c). e(X, d) :- ok(X).
    ok(q).
  )";
  auto SN = analyzeBaseline(Prog, /*Seminaive=*/true);
  auto NV = analyzeBaseline(Prog, /*Seminaive=*/false);
  ASSERT_EQ(SN.Predicates.size(), NV.Predicates.size());
  for (size_t I = 0; I < SN.Predicates.size(); ++I)
    EXPECT_EQ(SN.Predicates[I].SuccessSet, NV.Predicates[I].SuccessSet);
}

TEST(Baseline, IterationCountIsReported) {
  auto R = analyzeBaseline(R"(
    n(z). n(s(X)) :- n(X).
  )");
  EXPECT_GE(R.Iterations, 2u);
  EXPECT_GT(R.RowsDerived, 0u);
}

TEST(Baseline, PhaseTimings) {
  auto R = analyzeBaseline("p(a).");
  EXPECT_GE(R.PreprocSeconds, 0.0);
  EXPECT_GE(R.totalSeconds(), 0.0);
}

} // namespace
