//===- bench_compare_test.cpp - Bench regression gate tests ------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Covers the tools/ layer behind the CI bench gate: the JSON reader, the
// schema-light metric walk, gating thresholds and noise floors, array
// alignment by name/program, sample-profile share extraction, and the
// trajectory append.
//
//===----------------------------------------------------------------------===//

#include "tools/BenchCompare.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

using namespace lpa;

namespace {

JsonValue parseOk(const std::string &Text) {
  auto V = JsonValue::parse(Text);
  EXPECT_TRUE(V.hasValue()) << V.getError().str();
  return V.hasValue() ? *V : JsonValue();
}

const MetricDelta *findDelta(const CompareReport &R, std::string_view Path) {
  for (const MetricDelta &D : R.Deltas)
    if (D.Path == Path)
      return &D;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// JsonValue parser
//===----------------------------------------------------------------------===//

TEST(JsonValue, ParsesScalarsArraysAndObjects) {
  JsonValue V = parseOk(
      "{\"a\": 1.5, \"b\": \"x\", \"c\": [1, 2, 3], \"d\": {\"e\": true},"
      " \"f\": null, \"g\": -2e3}");
  ASSERT_TRUE(V.isObject());
  EXPECT_DOUBLE_EQ(V.numberOr("a", 0), 1.5);
  EXPECT_EQ(V.stringOr("b", ""), "x");
  const JsonValue *C = V.find("c");
  ASSERT_TRUE(C && C->isArray());
  ASSERT_EQ(C->items().size(), 3u);
  EXPECT_DOUBLE_EQ(C->items()[1].asNumber(), 2.0);
  const JsonValue *D = V.find("d");
  ASSERT_TRUE(D && D->isObject());
  ASSERT_TRUE(D->find("e"));
  EXPECT_TRUE(D->find("e")->asBool());
  ASSERT_TRUE(V.find("f"));
  EXPECT_EQ(V.find("f")->kind(), JsonValue::Kind::Null);
  EXPECT_DOUBLE_EQ(V.numberOr("g", 0), -2000.0);
}

TEST(JsonValue, ParsesScientificNotation) {
  // google-benchmark writes real_time in scientific notation.
  JsonValue V = parseOk("{\"real_time\": 1.1033385000018824e+06}");
  EXPECT_NEAR(V.numberOr("real_time", 0), 1103338.5000018824, 1e-3);
}

TEST(JsonValue, DecodesStringEscapes) {
  JsonValue V = parseOk("{\"s\": \"a\\n\\\"b\\\"\\u0041\\u00e9\"}");
  EXPECT_EQ(V.stringOr("s", ""), "a\n\"b\"A\xc3\xa9");
}

TEST(JsonValue, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::parse("{").hasValue());
  EXPECT_FALSE(JsonValue::parse("[1, 2,]").hasValue());
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing").hasValue());
  EXPECT_FALSE(JsonValue::parse("'single'").hasValue());
  EXPECT_FALSE(JsonValue::parse("").hasValue());
  auto E = JsonValue::parse("{\"a\": }");
  ASSERT_FALSE(E.hasValue());
  // Diagnostics carry a byte offset so bad artifacts are debuggable.
  EXPECT_NE(E.getError().str().find("offset"), std::string::npos);
}

TEST(JsonValue, RejectsRunawayNesting) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::parse(Deep).hasValue());
}

//===----------------------------------------------------------------------===//
// compareBenchJson: gating
//===----------------------------------------------------------------------===//

TEST(BenchCompare, SelfCompareHasNoRegressions) {
  JsonValue V = parseOk(
      "{\"fleet\": {\"parallel_wall_ms\": 120.0, \"table_space_bytes\": "
      "1048576}, \"rows\": [{\"program\": \"p1\", \"solve_ms\": 3.5}]}");
  CompareReport R = compareBenchJson(V, V, CompareOptions{});
  EXPECT_EQ(R.Deltas.size(), 3u);
  EXPECT_EQ(R.regressionCount(), 0u);
  EXPECT_FALSE(R.hasRegressions());
  EXPECT_TRUE(R.OnlyInBase.empty());
  EXPECT_TRUE(R.OnlyInCurrent.empty());
}

TEST(BenchCompare, WallGrowthAboveThresholdGates) {
  JsonValue Base = parseOk("{\"solve_ms\": 100.0}");
  JsonValue Cur = parseOk("{\"solve_ms\": 130.0}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  ASSERT_EQ(R.Deltas.size(), 1u);
  const MetricDelta &D = R.Deltas[0];
  EXPECT_EQ(D.MetricKind, MetricDelta::Kind::WallMs);
  EXPECT_NEAR(D.DeltaPct, 30.0, 1e-9);
  EXPECT_TRUE(D.Regressed);
  EXPECT_TRUE(R.hasRegressions());
}

TEST(BenchCompare, WallGrowthBelowThresholdDoesNotGate) {
  JsonValue Base = parseOk("{\"solve_ms\": 100.0}");
  JsonValue Cur = parseOk("{\"solve_ms\": 114.0}"); // +14% < 15% default
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_FALSE(R.Deltas[0].Regressed);
}

TEST(BenchCompare, BytesUseTheTighterThreshold) {
  // +12% bytes gates (10% threshold) where +12% wall would not (15%).
  JsonValue Base =
      parseOk("{\"table_space_bytes\": 1000000, \"solve_ms\": 100.0}");
  JsonValue Cur =
      parseOk("{\"table_space_bytes\": 1120000, \"solve_ms\": 112.0}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  const MetricDelta *B = findDelta(R, "table_space_bytes");
  const MetricDelta *W = findDelta(R, "solve_ms");
  ASSERT_TRUE(B && W);
  EXPECT_EQ(B->MetricKind, MetricDelta::Kind::Bytes);
  EXPECT_TRUE(B->Regressed);
  EXPECT_FALSE(W->Regressed);
  EXPECT_EQ(R.regressionCount(), 1u);
}

TEST(BenchCompare, NoiseFloorsSuppressTinyBaselines) {
  // 0.2 ms doubling and a 4 KiB table tripling are jitter, not regressions.
  JsonValue Base =
      parseOk("{\"solve_ms\": 0.2, \"table_space_bytes\": 4096}");
  JsonValue Cur =
      parseOk("{\"solve_ms\": 0.4, \"table_space_bytes\": 12288}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  EXPECT_EQ(R.Deltas.size(), 2u);
  EXPECT_EQ(R.regressionCount(), 0u);
}

TEST(BenchCompare, ImprovementsNeverGate) {
  JsonValue Base =
      parseOk("{\"solve_ms\": 100.0, \"table_space_bytes\": 1000000}");
  JsonValue Cur =
      parseOk("{\"solve_ms\": 10.0, \"table_space_bytes\": 100000}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  EXPECT_EQ(R.regressionCount(), 0u);
}

TEST(BenchCompare, GoogleBenchmarkTimeKeysAreWallMetrics) {
  JsonValue Base = parseOk(
      "{\"benchmarks\": [{\"name\": \"BM_X/0\", \"real_time\": 1000.0,"
      " \"cpu_time\": 990.0, \"iterations\": 100}]}");
  JsonValue Cur = parseOk(
      "{\"benchmarks\": [{\"name\": \"BM_X/0\", \"real_time\": 2000.0,"
      " \"cpu_time\": 1980.0, \"iterations\": 50}]}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  // iterations is not a metric; real_time and cpu_time are.
  EXPECT_EQ(R.Deltas.size(), 2u);
  EXPECT_EQ(R.regressionCount(), 2u);
  EXPECT_TRUE(findDelta(R, "benchmarks[BM_X/0].real_time"));
}

//===----------------------------------------------------------------------===//
// compareBenchJson: alignment and drift
//===----------------------------------------------------------------------===//

TEST(BenchCompare, ArraysAlignByNameAcrossReordering) {
  JsonValue Base = parseOk(
      "{\"benchmarks\": [{\"name\": \"a\", \"real_time\": 10.0},"
      " {\"name\": \"b\", \"real_time\": 20.0}]}");
  JsonValue Cur = parseOk(
      "{\"benchmarks\": [{\"name\": \"b\", \"real_time\": 20.0},"
      " {\"name\": \"a\", \"real_time\": 10.0}]}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  EXPECT_EQ(R.Deltas.size(), 2u);
  EXPECT_EQ(R.regressionCount(), 0u);
  EXPECT_TRUE(R.OnlyInBase.empty());
  EXPECT_TRUE(R.OnlyInCurrent.empty());
}

TEST(BenchCompare, TableDriverRowsAlignByProgram) {
  JsonValue Base = parseOk(
      "{\"rows\": [{\"program\": \"append\", \"solve_ms\": 5.0},"
      " {\"program\": \"nrev\", \"solve_ms\": 9.0}]}");
  JsonValue Cur = parseOk(
      "{\"rows\": [{\"program\": \"nrev\", \"solve_ms\": 9.0},"
      " {\"program\": \"append\", \"solve_ms\": 5.0}]}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  EXPECT_EQ(R.regressionCount(), 0u);
  EXPECT_TRUE(findDelta(R, "rows[append].solve_ms"));
  EXPECT_TRUE(findDelta(R, "rows[nrev].solve_ms"));
}

TEST(BenchCompare, SchemaDriftIsReportedNotGated) {
  JsonValue Base = parseOk("{\"old_ms\": 10.0, \"shared_ms\": 5.0}");
  JsonValue Cur = parseOk("{\"new_ms\": 10.0, \"shared_ms\": 5.0}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  EXPECT_EQ(R.regressionCount(), 0u);
  ASSERT_EQ(R.OnlyInBase.size(), 1u);
  EXPECT_EQ(R.OnlyInBase[0], "old_ms");
  ASSERT_EQ(R.OnlyInCurrent.size(), 1u);
  EXPECT_EQ(R.OnlyInCurrent[0], "new_ms");
  EXPECT_FALSE(R.fails(CompareOptions{}));
}

TEST(BenchCompare, StrictModeGatesOnBaselineOnlyMetrics) {
  JsonValue Base = parseOk("{\"old_ms\": 10.0, \"shared_ms\": 5.0}");
  JsonValue Cur = parseOk("{\"shared_ms\": 5.0}");
  CompareOptions Strict;
  Strict.StrictSchema = true;
  CompareReport R = compareBenchJson(Base, Cur, Strict);
  // No metric regressed — only the schema did — yet the gate fails.
  EXPECT_EQ(R.regressionCount(), 0u);
  EXPECT_TRUE(R.fails(Strict));
}

TEST(BenchCompare, StrictModeIgnoresCurrentOnlyMetrics) {
  // New benches (current-only) must never gate: growing coverage is how
  // the trajectory is supposed to change.
  JsonValue Base = parseOk("{\"shared_ms\": 5.0}");
  JsonValue Cur = parseOk("{\"shared_ms\": 5.0, \"new_ms\": 10.0}");
  CompareOptions Strict;
  Strict.StrictSchema = true;
  CompareReport R = compareBenchJson(Base, Cur, Strict);
  EXPECT_FALSE(R.fails(Strict));
}

TEST(BenchCompare, RenderTextListsEachDriftedPath) {
  JsonValue Base = parseOk("{\"gone_ms\": 10.0, \"also_gone_ms\": 4.0,"
                           " \"shared_ms\": 5.0}");
  JsonValue Cur = parseOk("{\"shared_ms\": 5.0, \"fresh_ms\": 2.0}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  std::string Text = R.renderText(CompareOptions{});
  EXPECT_NE(Text.find("missing from current: gone_ms"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("missing from current: also_gone_ms"),
            std::string::npos);
  EXPECT_NE(Text.find("new: fresh_ms"), std::string::npos);
}

TEST(BenchCompare, RenderJsonCarriesSchemaDriftArrays) {
  JsonValue Base = parseOk("{\"gone_ms\": 10.0, \"shared_ms\": 5.0}");
  JsonValue Cur = parseOk("{\"shared_ms\": 5.0, \"fresh_ms\": 2.0}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  JsonValue Doc = parseOk(R.renderJson("base.json", "cur.json"));
  const JsonValue *OIB = Doc.find("only_in_base");
  ASSERT_TRUE(OIB && OIB->isArray());
  ASSERT_EQ(OIB->items().size(), 1u);
  EXPECT_EQ(OIB->items()[0].asString(), "gone_ms");
  const JsonValue *OIC = Doc.find("only_in_current");
  ASSERT_TRUE(OIC && OIC->isArray());
  ASSERT_EQ(OIC->items().size(), 1u);
  EXPECT_EQ(OIC->items()[0].asString(), "fresh_ms");
}

//===----------------------------------------------------------------------===//
// compareBenchJson: sample profiles
//===----------------------------------------------------------------------===//

TEST(BenchCompare, SampleProfileNumbersNeverGate) {
  // The profile block carries *_bytes maxima that would trip the bytes
  // gate if walked; they are statistical and must be excluded.
  JsonValue Base = parseOk(
      "{\"fleet\": {\"parallel_wall_ms\": 100.0, \"sample_profile\": "
      "{\"total_samples\": 100, \"lanes\": [{\"label\": \"worker-1\","
      " \"max_table_bytes\": 1000000}]}}}");
  JsonValue Cur = parseOk(
      "{\"fleet\": {\"parallel_wall_ms\": 100.0, \"sample_profile\": "
      "{\"total_samples\": 100, \"lanes\": [{\"label\": \"worker-1\","
      " \"max_table_bytes\": 9000000}]}}}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_EQ(R.Deltas[0].Path, "fleet.parallel_wall_ms");
  EXPECT_EQ(R.regressionCount(), 0u);
}

TEST(BenchCompare, ProfileShareShiftsAreExtracted) {
  JsonValue Base = parseOk(
      "{\"sample_profile\": {\"total_samples\": 100, \"stacks\": ["
      "{\"lane\": \"w1\", \"frames\": [\"path/2\"], \"phase\": \"resolve\","
      " \"count\": 80},"
      "{\"lane\": \"w1\", \"frames\": [\"edge/2\"], \"phase\": \"resolve\","
      " \"count\": 20}]}}");
  JsonValue Cur = parseOk(
      "{\"sample_profile\": {\"total_samples\": 200, \"stacks\": ["
      "{\"lane\": \"w1\", \"frames\": [\"path/2\"], \"phase\": \"resolve\","
      " \"count\": 40},"
      "{\"lane\": \"w1\", \"frames\": [\"edge/2\"], \"phase\": \"resolve\","
      " \"count\": 160}]}}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  ASSERT_EQ(R.ProfileShifts.size(), 2u);
  // Sorted by absolute share movement: edge 20% -> 80% (60 points) first.
  EXPECT_EQ(R.ProfileShifts[0].Stack, "w1;edge/2;[resolve]");
  EXPECT_NEAR(R.ProfileShifts[0].BaseSharePct, 20.0, 1e-9);
  EXPECT_NEAR(R.ProfileShifts[0].CurSharePct, 80.0, 1e-9);
  EXPECT_EQ(R.ProfileShifts[1].Stack, "w1;path/2;[resolve]");
  EXPECT_EQ(R.regressionCount(), 0u); // shifts are informational
}

TEST(BenchCompare, IdenticalProfilesProduceNoShifts) {
  JsonValue V = parseOk(
      "{\"sample_profile\": {\"total_samples\": 50, \"stacks\": ["
      "{\"lane\": \"main\", \"frames\": [\"f/1\"], \"phase\": \"resolve\","
      " \"count\": 50}]}}");
  CompareReport R = compareBenchJson(V, V, CompareOptions{});
  EXPECT_TRUE(R.ProfileShifts.empty());
}

//===----------------------------------------------------------------------===//
// Reports and the trajectory file
//===----------------------------------------------------------------------===//

TEST(BenchCompare, RenderTextNamesRegressions) {
  JsonValue Base = parseOk("{\"solve_ms\": 100.0}");
  JsonValue Cur = parseOk("{\"solve_ms\": 150.0}");
  CompareOptions Opts;
  CompareReport R = compareBenchJson(Base, Cur, Opts);
  std::string Text = R.renderText(Opts);
  EXPECT_NE(Text.find("1 regression(s)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("REGRESSION solve_ms"), std::string::npos) << Text;
}

TEST(BenchCompare, RenderJsonRoundTripsThroughTheParser) {
  JsonValue Base = parseOk("{\"solve_ms\": 100.0, \"quiet_ms\": 50.0}");
  JsonValue Cur = parseOk("{\"solve_ms\": 150.0, \"quiet_ms\": 50.0}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  JsonValue Doc = parseOk(R.renderJson("base.json", "cur.json"));
  EXPECT_EQ(Doc.stringOr("baseline", ""), "base.json");
  EXPECT_DOUBLE_EQ(Doc.numberOr("metrics_compared", 0), 2.0);
  EXPECT_DOUBLE_EQ(Doc.numberOr("regressions", 0), 1.0);
  const JsonValue *Deltas = Doc.find("deltas");
  ASSERT_TRUE(Deltas && Deltas->isArray());
  // quiet_ms moved 0% — compact reports drop it; solve_ms stays.
  ASSERT_EQ(Deltas->items().size(), 1u);
  EXPECT_EQ(Deltas->items()[0].stringOr("path", ""), "solve_ms");
  EXPECT_TRUE(Deltas->items()[0].find("regressed")->asBool());
}

TEST(BenchCompare, TrajectoryAppendsOneParsableLinePerRun) {
  std::string Path =
      testing::TempDir() + "/lpa_bench_trajectory_test.jsonl";
  std::remove(Path.c_str());

  JsonValue Base = parseOk("{\"solve_ms\": 100.0}");
  JsonValue Cur = parseOk("{\"solve_ms\": 150.0}");
  CompareReport R = compareBenchJson(Base, Cur, CompareOptions{});
  ASSERT_TRUE(appendTrajectoryLine(Path, R, "b.json", "c.json"));
  ASSERT_TRUE(appendTrajectoryLine(Path, R, "b.json", "c.json"));

  auto Text = readFileText(Path);
  ASSERT_TRUE(Text.hasValue()) << Text.getError().str();
  size_t Newline = Text->find('\n');
  ASSERT_NE(Newline, std::string::npos);
  EXPECT_EQ(std::count(Text->begin(), Text->end(), '\n'), 2);
  JsonValue Line = parseOk(Text->substr(0, Newline));
  EXPECT_EQ(Line.stringOr("baseline", ""), "b.json");
  EXPECT_DOUBLE_EQ(Line.numberOr("regressions", 0), 1.0);
  const JsonValue *Paths = Line.find("regressed_paths");
  ASSERT_TRUE(Paths && Paths->isArray());
  ASSERT_EQ(Paths->items().size(), 1u);
  EXPECT_EQ(Paths->items()[0].asString(), "solve_ms");
  std::remove(Path.c_str());
}

TEST(BenchCompare, ReadFileTextFailsWithDiagnostic) {
  auto R = readFileText("/nonexistent/lpa_bench_compare_test.json");
  ASSERT_FALSE(R.hasValue());
  EXPECT_FALSE(R.getError().str().empty());
}

} // namespace
