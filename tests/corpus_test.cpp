//===- corpus_test.cpp - Benchmark corpus integration tests ------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Every embedded benchmark must parse and run through its analysis
// end-to-end; for the logic benchmarks the engine and the GAIA-like
// baseline must agree exactly (the Table 2 property at corpus scale).
//
//===----------------------------------------------------------------------===//

#include "baseline/GaiaLike.h"
#include "corpus/Corpus.h"
#include "depthk/DepthK.h"
#include "fl/FLParser.h"
#include "reader/Parser.h"
#include "prop/Groundness.h"
#include "strictness/Strictness.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

//===----------------------------------------------------------------------===//
// Logic-program benchmarks (Tables 1/2/4)
//===----------------------------------------------------------------------===//

class PrologCorpusTest : public ::testing::TestWithParam<size_t> {
protected:
  const CorpusProgram &program() const {
    return prologBenchmarks()[GetParam()];
  }
};

TEST_P(PrologCorpusTest, ParsesAsProlog) {
  SymbolTable Syms;
  TermStore Store;
  auto Clauses = Parser::parseProgram(Syms, Store, program().Source);
  ASSERT_TRUE(Clauses.hasValue())
      << program().Name << ": " << Clauses.getError().str();
  EXPECT_GT(Clauses->size(), 5u) << program().Name;
}

TEST_P(PrologCorpusTest, GroundnessAnalysisSucceeds) {
  SymbolTable Syms;
  GroundnessAnalyzer A(Syms);
  auto R = A.analyze(program().Source);
  ASSERT_TRUE(R.hasValue())
      << program().Name << ": " << R.getError().str();
  EXPECT_FALSE(R->Predicates.empty());
  EXPECT_GT(R->TableSpaceBytes, 0u);
  // Every program defines a go/N driver that can succeed.
  bool FoundGo = false;
  for (const PredGroundness &P : R->Predicates)
    if (P.Name == "go") {
      FoundGo = true;
      EXPECT_TRUE(P.CanSucceed) << program().Name << " go/" << P.Arity;
    }
  EXPECT_TRUE(FoundGo) << program().Name;
}

TEST_P(PrologCorpusTest, BaselineAgreesWithEngine) {
  SymbolTable Syms1, Syms2;
  GroundnessAnalyzer Engine(Syms1);
  GaiaLikeAnalyzer Baseline(Syms2);
  auto RE = Engine.analyze(program().Source);
  auto RB = Baseline.analyze(program().Source);
  ASSERT_TRUE(RE.hasValue()) << program().Name;
  ASSERT_TRUE(RB.hasValue()) << program().Name;
  ASSERT_EQ(RE->Predicates.size(), RB->Predicates.size());
  for (size_t I = 0; I < RE->Predicates.size(); ++I) {
    EXPECT_EQ(RE->Predicates[I].Name, RB->Predicates[I].Name);
    EXPECT_EQ(RE->Predicates[I].SuccessSet, RB->Predicates[I].SuccessSet)
        << program().Name << " " << RE->Predicates[I].Name << "/"
        << RE->Predicates[I].Arity;
  }
}

TEST_P(PrologCorpusTest, DepthKAnalysisSucceeds) {
  SymbolTable Syms;
  DepthKAnalyzer A(Syms);
  auto R = A.analyze(program().Source);
  ASSERT_TRUE(R.hasValue())
      << program().Name << ": " << R.getError().str();
  EXPECT_FALSE(R->Predicates.empty());
  EXPECT_GT(R->NumCallPatterns, 0u);
}

TEST_P(PrologCorpusTest, DepthKGroundnessIsConsistentWithProp) {
  // Soundness cross-check: if depth-k says an argument is ground on
  // success, Prop must not contradict it with a nonground-only success
  // set... both are over-approximations of the same concrete semantics,
  // so "definitely ground" flags may differ in precision but a predicate
  // that can succeed in one analysis must succeed in the other.
  SymbolTable Syms1, Syms2;
  GroundnessAnalyzer Prop(Syms1);
  DepthKAnalyzer DK(Syms2);
  auto RP = Prop.analyze(program().Source);
  auto RD = DK.analyze(program().Source);
  ASSERT_TRUE(RP.hasValue());
  ASSERT_TRUE(RD.hasValue());
  for (const PredGroundness &P : RP->Predicates) {
    const DepthKPred *D = RD->find(P.Name, P.Arity);
    ASSERT_NE(D, nullptr) << P.Name;
    EXPECT_EQ(P.CanSucceed, D->CanSucceed)
        << program().Name << " " << P.Name << "/" << P.Arity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLogicBenchmarks, PrologCorpusTest,
    ::testing::Range(size_t(0), prologBenchmarks().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return std::string(prologBenchmarks()[Info.param].Name);
    });

//===----------------------------------------------------------------------===//
// Functional benchmarks (Table 3)
//===----------------------------------------------------------------------===//

class FLCorpusTest : public ::testing::TestWithParam<size_t> {
protected:
  const CorpusProgram &program() const { return flBenchmarks()[GetParam()]; }
};

TEST_P(FLCorpusTest, ParsesAsFL) {
  auto P = FLParser::parse(program().Source);
  ASSERT_TRUE(P.hasValue())
      << program().Name << ": " << P.getError().str();
  EXPECT_GT(P->Functions.size(), 2u) << program().Name;
  EXPECT_FALSE(P->Equations.empty());
}

TEST_P(FLCorpusTest, StrictnessAnalysisSucceeds) {
  StrictnessAnalyzer A;
  auto R = A.analyze(program().Source);
  ASSERT_TRUE(R.hasValue())
      << program().Name << ": " << R.getError().str();
  EXPECT_FALSE(R->Functions.empty());
  EXPECT_GT(R->TableSpaceBytes, 0u);
  // main must not diverge under e-demand in any benchmark.
  const FuncStrictness *Main = R->find("main");
  ASSERT_NE(Main, nullptr) << program().Name;
  EXPECT_FALSE(Main->DivergesUnderE) << program().Name;
}

TEST_P(FLCorpusTest, IfIsNeverStrictInBothBranches) {
  // Every benchmark defines if/3; demand analysis must see that the two
  // branches are alternatives, never both demanded.
  StrictnessAnalyzer A;
  auto R = A.analyze(program().Source);
  ASSERT_TRUE(R.hasValue());
  const FuncStrictness *If = R->find("if");
  if (!If)
    return; // A benchmark without if/3 is fine.
  ASSERT_EQ(If->Arity, 3u);
  EXPECT_FALSE(If->UnderE.size() == 3 && If->UnderE[1] > Demand::None &&
               If->UnderE[2] > Demand::None)
      << program().Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFLBenchmarks, FLCorpusTest,
    ::testing::Range(size_t(0), flBenchmarks().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return std::string(flBenchmarks()[Info.param].Name);
    });

//===----------------------------------------------------------------------===//
// Corpus shape checks
//===----------------------------------------------------------------------===//

TEST(Corpus, BenchmarkCountsMatchPaper) {
  EXPECT_EQ(prologBenchmarks().size(), 12u); // Table 1/2 rows.
  EXPECT_EQ(flBenchmarks().size(), 10u);     // Table 3 rows.
}

TEST(Corpus, SizesAreInPaperBand) {
  // Our rewritten benchmarks should be in the same size band as the
  // paper's line counts (within a factor of 2 either way).
  for (const CorpusProgram &P : prologBenchmarks()) {
    EXPECT_GT(P.sourceLines(), P.PaperLines / 3) << P.Name;
    EXPECT_LT(P.sourceLines(), P.PaperLines * 3) << P.Name;
  }
}

TEST(Corpus, FindBenchmarkWorks) {
  EXPECT_NE(findBenchmark("qsort"), nullptr);
  EXPECT_NE(findBenchmark("pcprove"), nullptr);
  EXPECT_EQ(findBenchmark("nonexistent"), nullptr);
}

TEST(Corpus, PaperRowsArePresent) {
  for (const CorpusProgram &P : prologBenchmarks()) {
    EXPECT_GT(P.Table1.Total, 0) << P.Name;
    EXPECT_GT(P.GaiaSeconds, 0) << P.Name;
  }
  for (const CorpusProgram &P : flBenchmarks())
    EXPECT_GT(P.Table1.Total, 0) << P.Name;
}

} // namespace
