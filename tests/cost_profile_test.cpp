//===- cost_profile_test.cpp - Per-query cost profiles + telemetry ring ------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The "ctest -L cost" suite: exactness of per-subgoal cost attribution
// (self-time conservation against the query wall, zero-cost warm hits,
// identical answer sets with recording on/off), the explain op across the
// session and protocol layers, the Prometheus text exposition (format,
// escaping, log2 histogram), the metrics history ring's keep-last
// eviction, slowlog cost-rollup persistence, and the recorder-driven
// adaptive sampler boost.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "obs/CostProfile.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/MetricsHistory.h"
#include "obs/Sampler.h"
#include "reader/Parser.h"
#include "srv/Protocol.h"
#include "srv/Session.h"
#include "srv/SlowLog.h"
#include "support/JsonValue.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace lpa;

namespace {

/// Left-recursive path closure over a complete N-vertex digraph — the
/// "chains worst case" family the benches use: N^2 unique answers, N^2
/// duplicates, all the work inside tabled producers.
std::string digraphClosure(int N) {
  std::string P = ":- table path/2.\n"
                  "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
                  "path(X, Y) :- edge(X, Y).\n";
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      P += "edge(v" + std::to_string(I) + ", v" + std::to_string(J) + ").\n";
  return P;
}

/// Sorted rendered solutions — the order-insensitive answer fingerprint.
std::vector<std::string> answersOf(AnalysisSession &S, const char *GoalText) {
  auto Q = S.runQuery(GoalText, /*MaxSolutions=*/100000);
  EXPECT_TRUE(Q.hasValue());
  std::vector<std::string> Out = Q ? Q->Solutions : std::vector<std::string>();
  std::sort(Out.begin(), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Attribution exactness
//===----------------------------------------------------------------------===//

TEST(CostProfileTest, SelfCostsConserveQueryWall) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(digraphClosure(12)).hasValue());
  Solver::Options EO;
  EO.RecordCosts = true;
  Solver Engine(DB, EO);
  ASSERT_NE(Engine.costProfile(), nullptr);

  auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
  ASSERT_TRUE(G.hasValue());
  size_t Sols = Engine.solve(*G, nullptr);
  EXPECT_EQ(Sols, 144u);

  CostSummary CS = Engine.exportCostSummary();
  ASSERT_FALSE(CS.Nodes.empty());
  ASSERT_GT(CS.QueryWallNs, 0u);

  // Conservation is exact, not approximate: every nanosecond between the
  // begin and end clock reads lands in exactly one bucket (a subgoal's
  // self time or the root).
  uint64_t SumSelf = 0;
  for (const CostNode &N : CS.Nodes)
    SumSelf += N.SelfNs;
  EXPECT_EQ(SumSelf, CS.AttributedNs);
  EXPECT_EQ(CS.AttributedNs + CS.RootNs, CS.QueryWallNs);

  // The acceptance bar: on a producer-heavy closure, at least 90% of the
  // query wall is attributed to subgoal self-costs (the root keeps only
  // scheduling and completion bookkeeping).
  EXPECT_GE(double(CS.AttributedNs), 0.90 * double(CS.QueryWallNs))
      << "attributed " << CS.AttributedNs << " of " << CS.QueryWallNs;

  // Steps were charged (the closure resolves thousands of clauses), and
  // answer traffic landed on the producing subgoal.
  uint64_t Steps = 0, Inserted = 0;
  for (const CostNode &N : CS.Nodes) {
    Steps += N.Steps;
    Inserted += N.AnswersInserted;
    EXPECT_GE(N.CumNs, N.SelfNs);
  }
  EXPECT_GT(Steps, 0u);
  EXPECT_EQ(Inserted, 144u);

  // Rollups cover the same totals.
  ASSERT_FALSE(CS.PerPred.empty());
  uint64_t RollupSelf = 0;
  for (const CostRollup &R : CS.PerPred)
    RollupSelf += R.SelfNs;
  EXPECT_EQ(RollupSelf, CS.AttributedNs);
  ASSERT_FALSE(CS.PerScc.empty());
}

TEST(CostProfileTest, WarmHitsAttributeZeroColdCost) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(digraphClosure(4)).hasValue());
  Solver::Options EO;
  EO.RecordCosts = true;
  Solver Engine(DB, EO);

  auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
  ASSERT_TRUE(G.hasValue());
  EXPECT_EQ(Engine.solve(*G, nullptr), 16u);
  CostSummary Cold = Engine.exportCostSummary();
  EXPECT_FALSE(Cold.Nodes.empty());
  for (const CostNode &N : Cold.Nodes)
    EXPECT_FALSE(N.Warm) << N.Label;

  // Same variant again: the table is complete, so the second query is a
  // pure warm hit — the subgoal shows up in the profile (it was touched)
  // but with zero self time and zero steps: no cold cost re-attributed.
  EXPECT_EQ(Engine.solve(*G, nullptr), 16u);
  CostSummary Warm = Engine.exportCostSummary();
  ASSERT_FALSE(Warm.Nodes.empty());
  bool SawWarm = false;
  for (const CostNode &N : Warm.Nodes) {
    EXPECT_TRUE(N.Warm) << N.Label;
    EXPECT_EQ(N.SelfNs, 0u) << N.Label;
    EXPECT_EQ(N.Steps, 0u) << N.Label;
    EXPECT_EQ(N.AnswersInserted, 0u) << N.Label;
    EXPECT_GT(N.AnswersConsumed, 0u) << N.Label;
    SawWarm = true;
  }
  EXPECT_TRUE(SawWarm);
  // The warm query's wall still conserves: it all belongs to the root.
  EXPECT_EQ(Warm.AttributedNs, 0u);
  EXPECT_EQ(Warm.RootNs, Warm.QueryWallNs);
}

TEST(CostProfileTest, RecordingDoesNotChangeAnswers) {
  for (size_t Workers : {size_t(0), size_t(4)}) {
    SCOPED_TRACE("workers=" + std::to_string(Workers));
    AnalysisSession::Options Off, On;
    Off.EvalWorkers = Workers;
    On.EvalWorkers = Workers;
    On.RecordCosts = true;
    AnalysisSession A(Off), B(On);
    ASSERT_TRUE(A.consult(digraphClosure(6)).hasValue());
    ASSERT_TRUE(B.consult(digraphClosure(6)).hasValue());
    std::vector<std::string> SA = answersOf(A, "path(v0, X)");
    std::vector<std::string> SB = answersOf(B, "path(v0, X)");
    EXPECT_FALSE(SA.empty());
    EXPECT_EQ(SA, SB);
  }
}

TEST(CostProfileTest, ForestExportCarriesCostAnnotations) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(digraphClosure(4)).hasValue());
  Solver::Options EO;
  EO.RecordCosts = true;
  Solver Engine(DB, EO);
  auto G = Parser::parseTerm(Syms, Engine.store(), "path(v0, X)");
  ASSERT_TRUE(G.hasValue());
  Engine.solve(*G, nullptr);
  ForestGraph FG = Engine.exportForest();
  ASSERT_FALSE(FG.Nodes.empty());
  bool AnyCost = false;
  for (const ForestNode &N : FG.Nodes)
    if (N.HasCost) {
      AnyCost = true;
      EXPECT_GE(N.CostCumNs, N.CostSelfNs);
    }
  EXPECT_TRUE(AnyCost);
  // The dot rendering mentions the cost line.
  std::string Dot = forestToDot(FG);
  EXPECT_NE(Dot.find("self "), std::string::npos);
}

//===----------------------------------------------------------------------===//
// explain: session + protocol
//===----------------------------------------------------------------------===//

TEST(ExplainTest, ExplainJsonRoundTrips) {
  AnalysisSession S; // RecordCosts off: explain attaches per query.
  ASSERT_TRUE(S.consult(digraphClosure(6)).hasValue());
  EXPECT_EQ(S.solver().costProfile(), nullptr);

  auto R = S.explainJson("path(X, Y)", /*TopK=*/5);
  ASSERT_TRUE(R.hasValue());
  auto Doc = JsonValue::parse(*R);
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_EQ(Doc->stringOr("schema", ""), "lpa.explain.v1");
  EXPECT_EQ(static_cast<uint64_t>(Doc->numberOr("solutions", 0)), 36u);

  const JsonValue *Cost = Doc->find("cost");
  ASSERT_NE(Cost, nullptr);
  ASSERT_TRUE(Cost->isObject());
  uint64_t Wall = static_cast<uint64_t>(Cost->numberOr("query_wall_ns", 0));
  uint64_t Attr = static_cast<uint64_t>(Cost->numberOr("attributed_ns", 0));
  uint64_t Root = static_cast<uint64_t>(Cost->numberOr("root_ns", 0));
  EXPECT_GT(Wall, 0u);
  EXPECT_EQ(Attr + Root, Wall);
  const JsonValue *Nodes = Cost->find("nodes");
  ASSERT_NE(Nodes, nullptr);
  ASSERT_TRUE(Nodes->isArray());
  EXPECT_FALSE(Nodes->items().empty());
  EXPECT_LE(Nodes->items().size(), 5u); // TopK bounds the tree.
  const JsonValue *PerPred = Cost->find("per_pred");
  ASSERT_NE(PerPred, nullptr);
  EXPECT_FALSE(PerPred->items().empty());

  // The temporary profile detached afterwards — the disabled path is back.
  EXPECT_EQ(S.solver().costProfile(), nullptr);

  // Parse errors surface as errors, and still restore the null profile.
  EXPECT_FALSE(S.explainJson("path(").hasValue());
  EXPECT_EQ(S.solver().costProfile(), nullptr);
}

TEST(ExplainTest, ExplainReportRendersTable) {
  AnalysisSession S;
  ASSERT_TRUE(S.consult(digraphClosure(4)).hasValue());
  std::string Report = S.explainReport("path(X, Y)");
  EXPECT_NE(Report.find("attributed"), std::string::npos);
  EXPECT_NE(Report.find("Self ms"), std::string::npos);
  EXPECT_NE(Report.find("path"), std::string::npos);
  // Parse errors render inline, not as an empty string.
  EXPECT_NE(S.explainReport("path(").find("explain:"), std::string::npos);
}

TEST(ExplainTest, ProtocolExplainOp) {
  AnalysisSession S;
  bool Shutdown = false;
  std::string Resp = handleRequestLine(
      S, R"({"op":"consult","program":":- table p/1.\np(X) :- q(X).\nq(1).\nq(2).\n"})",
      Shutdown);
  auto Doc = JsonValue::parse(Resp);
  ASSERT_TRUE(Doc.hasValue());
  ASSERT_TRUE(Doc->find("ok")->asBool()) << Resp;

  Resp = handleRequestLine(S, R"j({"op":"explain","goal":"p(X)","top":3})j",
                           Shutdown);
  Doc = JsonValue::parse(Resp);
  ASSERT_TRUE(Doc.hasValue());
  ASSERT_TRUE(Doc->find("ok")->asBool()) << Resp;
  const JsonValue *Ex = Doc->find("explain");
  ASSERT_NE(Ex, nullptr);
  EXPECT_EQ(Ex->stringOr("schema", ""), "lpa.explain.v1");
  const JsonValue *Cost = Ex->find("cost");
  ASSERT_NE(Cost, nullptr);
  EXPECT_FALSE(Cost->find("nodes")->items().empty());

  // Missing goal is a protocol error, not a crash.
  Resp = handleRequestLine(S, R"({"op":"explain"})", Shutdown);
  Doc = JsonValue::parse(Resp);
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_FALSE(Doc->find("ok")->asBool());
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(PrometheusTest, CounterAndGaugeFormat) {
  std::string Out;
  PrometheusWriter P(Out);
  P.counter("lpa_q_total", "Queries served", 42);
  P.gauge("lpa_bytes", "Live bytes", 1.5);
  EXPECT_EQ(Out, "# HELP lpa_q_total Queries served\n"
                 "# TYPE lpa_q_total counter\n"
                 "lpa_q_total 42\n"
                 "# HELP lpa_bytes Live bytes\n"
                 "# TYPE lpa_bytes gauge\n"
                 "lpa_bytes 1.5\n");
}

TEST(PrometheusTest, LabeledFamiliesShareOneHeader) {
  std::string Out;
  PrometheusWriter P(Out);
  P.counterLabeled("lpa_pred_calls_total", "Calls", "pred", "path/2", 7);
  P.counterLabeled("lpa_pred_calls_total", "Calls", "pred", "edge/2", 9);
  // One HELP/TYPE pair, two samples.
  EXPECT_EQ(Out.find("# HELP lpa_pred_calls_total"),
            Out.rfind("# HELP lpa_pred_calls_total"));
  EXPECT_NE(Out.find("lpa_pred_calls_total{pred=\"path/2\"} 7\n"),
            std::string::npos);
  EXPECT_NE(Out.find("lpa_pred_calls_total{pred=\"edge/2\"} 9\n"),
            std::string::npos);
}

TEST(PrometheusTest, Escaping) {
  std::string S;
  PrometheusWriter::escapeLabelValue(S, "a\"b\\c\nd");
  EXPECT_EQ(S, "a\\\"b\\\\c\\nd");
  S.clear();
  PrometheusWriter::escapeHelp(S, "line\nnext \\ end");
  EXPECT_EQ(S, "line\\nnext \\\\ end");
  // A label value that needs escaping round-trips through a sample line.
  std::string Out;
  PrometheusWriter P(Out);
  P.gaugeLabeled("lpa_g", "g", "pred", "f(\"x\")/1", 2.0);
  EXPECT_NE(Out.find("lpa_g{pred=\"f(\\\"x\\\")/1\"} 2\n"),
            std::string::npos);
}

TEST(PrometheusTest, HistogramLog2Buckets) {
  Histogram H;
  H.record(0); // bucket 0: le="0"
  H.record(1); // bucket 1: le="1"
  H.record(3); // bucket 2: le="3"
  H.record(3);
  std::string Out;
  PrometheusWriter P(Out);
  P.histogramLog2("lpa_lat", "Latency", H);
  EXPECT_NE(Out.find("# TYPE lpa_lat histogram\n"), std::string::npos);
  EXPECT_NE(Out.find("lpa_lat_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(Out.find("lpa_lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(Out.find("lpa_lat_bucket{le=\"3\"} 4\n"), std::string::npos);
  EXPECT_NE(Out.find("lpa_lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(Out.find("lpa_lat_sum 7\n"), std::string::npos);
  EXPECT_NE(Out.find("lpa_lat_count 4\n"), std::string::npos);
  // Cumulative counts never decrease and trailing empties are elided.
  EXPECT_EQ(Out.find("le=\"7\""), std::string::npos);
}

TEST(PrometheusTest, SessionExpositionParsesAndCovers) {
  AnalysisSession S;
  ASSERT_TRUE(S.consult(digraphClosure(4)).hasValue());
  ASSERT_TRUE(S.runQuery("path(v0, X)").hasValue());
  std::string Text = S.metricsText();
  EXPECT_NE(Text.find("# TYPE lpa_queries_total counter"), std::string::npos);
  EXPECT_NE(Text.find("lpa_queries_total 1\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE lpa_table_space_bytes gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE lpa_query_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("lpa_pred_calls_total{pred=\"path/2\"}"),
            std::string::npos);
  // Every line is HELP, TYPE, or "name[{labels}] value".
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos); // Text ends with a newline.
    std::string Line = Text.substr(Pos, Eol - Pos);
    if (Line.rfind("# HELP ", 0) != 0 && Line.rfind("# TYPE ", 0) != 0) {
      size_t Sp = Line.rfind(' ');
      ASSERT_NE(Sp, std::string::npos) << Line;
      EXPECT_GT(Sp, 0u) << Line;
    }
    Pos = Eol + 1;
  }
}

//===----------------------------------------------------------------------===//
// Metrics history ring
//===----------------------------------------------------------------------===//

TEST(MetricsHistoryTest, KeepLastEviction) {
  MetricsHistory H(MetricsHistory::Options{4, 10});
  uint32_t C = H.addSeries("hits");
  uint32_t G = H.addSeries("bytes", /*Counter=*/false);
  for (uint64_t I = 0; I < 10; ++I) {
    uint64_t Now = (I + 1) * 20 * 1000000ull; // 20 ms apart: always due.
    ASSERT_TRUE(H.due(Now));
    uint64_t V[] = {I * 10, 100 + I};
    H.sample(Now, V);
  }
  EXPECT_EQ(H.size(), 4u);
  EXPECT_EQ(H.capacity(), 4u);
  EXPECT_EQ(H.evicted(), 6u);
  EXPECT_EQ(H.totalSamples(), 10u);
  // Oldest surviving snapshot is sample 6 (0-based), newest is 9.
  EXPECT_EQ(H.at(0).Values[C], 60u);
  EXPECT_EQ(H.at(3).Values[C], 90u);
  // Counter trend: per-interval deltas; gauge trend: raw values.
  std::vector<uint64_t> CT = H.seriesTrend(C);
  ASSERT_EQ(CT.size(), 3u);
  EXPECT_EQ(CT[0], 10u);
  std::vector<uint64_t> GT = H.seriesTrend(G);
  ASSERT_EQ(GT.size(), 4u);
  EXPECT_EQ(GT[0], 106u);
  EXPECT_EQ(GT[3], 109u);
}

TEST(MetricsHistoryTest, DueHonorsInterval) {
  MetricsHistory H(MetricsHistory::Options{4, 100});
  H.addSeries("a");
  EXPECT_TRUE(H.due(5)); // Never sampled: always due.
  uint64_t V[] = {1};
  H.sample(1000000000ull, V);
  EXPECT_FALSE(H.due(1000000000ull + 50 * 1000000ull));
  EXPECT_TRUE(H.due(1000000000ull + 100 * 1000000ull));
}

TEST(MetricsHistoryTest, CounterTrendClampsAcrossResets) {
  MetricsHistory H(MetricsHistory::Options{8, 0});
  uint32_t C = H.addSeries("n");
  for (uint64_t V : {10ull, 30ull, 5ull, 6ull}) {
    uint64_t Row[] = {V};
    H.sample(V * 1000, Row);
  }
  std::vector<uint64_t> T = H.seriesTrend(C);
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0], 20u);
  EXPECT_EQ(T[1], 0u); // Reset: clamped, not underflowed.
  EXPECT_EQ(T[2], 1u);
}

TEST(MetricsHistoryTest, SparklineScalesToMax) {
  std::vector<uint64_t> V{0, 7};
  EXPECT_EQ(renderSparkline(V), "▁█");
  std::vector<uint64_t> Flat{5, 5, 5};
  EXPECT_EQ(renderSparkline(Flat), "███");
  EXPECT_EQ(renderSparkline({}), "");
}

TEST(MetricsHistoryTest, ProtocolMetricsOpTicksAndServes) {
  AnalysisSession::Options O;
  O.History.IntervalMs = 0; // Every request samples.
  AnalysisSession S(O);
  bool Shutdown = false;
  (void)handleRequestLine(
      S, R"({"op":"consult","program":"edge(a, b).\n"})", Shutdown);
  std::string Resp =
      handleRequestLine(S, R"({"op":"metrics","max_samples":5})", Shutdown);
  auto Doc = JsonValue::parse(Resp);
  ASSERT_TRUE(Doc.hasValue());
  ASSERT_TRUE(Doc->find("ok")->asBool()) << Resp;
  const JsonValue *M = Doc->find("metrics");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->stringOr("schema", ""), "lpa.metrics.v1");
  // The exposition rides as an escaped string and parses as such.
  const JsonValue *Exp = M->find("exposition");
  ASSERT_NE(Exp, nullptr);
  ASSERT_TRUE(Exp->isString());
  EXPECT_NE(Exp->asString().find("# TYPE lpa_queries_total counter"),
            std::string::npos);
  const JsonValue *Hist = M->find("history");
  ASSERT_NE(Hist, nullptr);
  ASSERT_TRUE(Hist->isObject());
  EXPECT_FALSE(Hist->find("series")->items().empty());
  EXPECT_FALSE(Hist->find("samples")->items().empty());
}

//===----------------------------------------------------------------------===//
// inspect: shard contention ratio + contention sort
//===----------------------------------------------------------------------===//

TEST(InspectContentionTest, ShardsCarryContentionRatio) {
  AnalysisSession::Options O;
  O.EvalWorkers = 2;
  AnalysisSession S(O);
  ASSERT_TRUE(S.consult(digraphClosure(5)).hasValue());
  // A conjunction of two variable-disjoint tabled seeds: the gate the
  // parallel prime needs before the shared space (and its shards) exists.
  ASSERT_TRUE(S.runQuery("path(v0, X), path(v1, Y)", 1000).hasValue());
  std::string Out = S.inspectJson(5, "contention");
  auto Doc = JsonValue::parse(Out);
  ASSERT_TRUE(Doc.hasValue()) << Out;
  EXPECT_EQ(Doc->stringOr("sort", ""), "contention");
  const JsonValue *Shared = Doc->find("shared_space");
  ASSERT_NE(Shared, nullptr);
  const JsonValue *Shards = Shared->find("shards");
  ASSERT_NE(Shards, nullptr);
  ASSERT_FALSE(Shards->items().empty());
  double Prev = 2.0;
  for (const JsonValue &Sh : Shards->items()) {
    ASSERT_NE(Sh.find("shard"), nullptr);
    ASSERT_NE(Sh.find("contention_ratio"), nullptr);
    double R = Sh.numberOr("contention_ratio", -1);
    EXPECT_GE(R, 0.0);
    EXPECT_LE(R, 1.0);
    EXPECT_LE(R, Prev); // Sorted descending by ratio.
    Prev = R;
  }

  // The protocol layer accepts the new sort and still rejects junk.
  bool Shutdown = false;
  std::string Resp = handleRequestLine(
      S, R"({"op":"inspect","top":3,"sort":"contention"})", Shutdown);
  auto RDoc = JsonValue::parse(Resp);
  ASSERT_TRUE(RDoc.hasValue());
  EXPECT_TRUE(RDoc->find("ok")->asBool());
  Resp = handleRequestLine(S, R"({"op":"inspect","sort":"zorp"})", Shutdown);
  RDoc = JsonValue::parse(Resp);
  ASSERT_TRUE(RDoc.hasValue());
  EXPECT_FALSE(RDoc->find("ok")->asBool());
}

//===----------------------------------------------------------------------===//
// Slowlog cost rollup + persistence
//===----------------------------------------------------------------------===//

TEST(SlowlogCostTest, ExemplarCostRollupPersistsAndReloads) {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     "lpa_cost_slowlog_test")
                        .string();
  std::filesystem::remove_all(Dir);

  SlowQueryExemplar E;
  E.Id = 7;
  E.Goal = "path(X, Y)";
  E.WallMs = 12.5;
  E.CostAttributedNs = 900;
  E.CostRootNs = 100;
  E.TopCosts.push_back({"path/2", 600, 40, 1});
  E.TopCosts.push_back({"edge/2", 300, 10, 0});
  {
    SlowQueryLog::Options LO;
    LO.Dir = Dir;
    SlowQueryLog Log(LO);
    Log.insert(E);
  } // Destructor persists survivors.

  SlowQueryLog::Options LO;
  LO.Dir = Dir;
  SlowQueryLog Reloaded(LO);
  EXPECT_EQ(Reloaded.loaded(), 1u);
  EXPECT_EQ(Reloaded.captured(), 0u); // Reloads are not fresh captures.
  const SlowQueryExemplar *Got = Reloaded.get(7);
  ASSERT_NE(Got, nullptr);
  EXPECT_EQ(Got->Goal, "path(X, Y)");
  EXPECT_EQ(Got->CostAttributedNs, 900u);
  EXPECT_EQ(Got->CostRootNs, 100u);
  ASSERT_EQ(Got->TopCosts.size(), 2u);
  EXPECT_EQ(Got->TopCosts[0].Pred, "path/2");
  EXPECT_EQ(Got->TopCosts[0].SelfNs, 600u);
  EXPECT_EQ(Got->TopCosts[1].WarmHits, 0u);
  std::filesystem::remove_all(Dir);
}

TEST(SlowlogCostTest, RecordCostsSessionEmbedsRollup) {
  AnalysisSession::Options O;
  O.RecordCosts = true;
  O.SlowLog.ThresholdMs = 0.0000001; // Everything is slow.
  O.SlowLog.MinWallMs = 0;
  AnalysisSession S(O);
  ASSERT_TRUE(S.consult(digraphClosure(6)).hasValue());
  ASSERT_TRUE(S.runQuery("path(X, Y)", 1000).hasValue());
  ASSERT_GT(S.slowlog().size(), 0u);
  const SlowQueryExemplar *E = S.slowlog().entries().front();
  EXPECT_GT(E->CostAttributedNs + E->CostRootNs, 0u);
  ASSERT_FALSE(E->TopCosts.empty());
  EXPECT_EQ(E->TopCosts.front().Pred.find("path"), 0u);
  // And the JSON rendering carries the "cost" object.
  std::string Json = S.slowlogJson();
  EXPECT_NE(Json.find("\"cost\""), std::string::npos);
  EXPECT_NE(Json.find("\"attributed_ns\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Recorder-driven adaptive sampling
//===----------------------------------------------------------------------===//

TEST(AdaptiveSamplingTest, AlarmBoostsSweepRate) {
  Sampler::Options SO;
  SO.Hz = 200;
  SO.BoostHz = 2000;
  Sampler P(SO);
  EXPECT_EQ(P.boostHz(), 2000u);
  std::atomic<uint64_t> Alarms{0};
  P.setAlarmSource(&Alarms);
  P.start();
  P.armBoostBaseline(0);
  Alarms.store(1);
  // Give the sweep loop time to notice the alarm and re-pace.
  for (int I = 0; I < 200 && !P.boostedSweeps(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(P.boostedSweeps(), 0u);
  EXPECT_EQ(P.effectiveHz(), 2000u);
  P.disarmBoost();
  P.stop();
}

TEST(AdaptiveSamplingTest, BoostAutoDefaultsAndClamps) {
  Sampler::Options SO;
  SO.Hz = 1000;
  SO.BoostHz = 0; // auto: 8x base rate.
  Sampler P(SO);
  EXPECT_EQ(P.boostHz(), 8000u);
  Sampler::Options Hi;
  Hi.Hz = 50000;
  Hi.BoostHz = 0;
  Sampler Q(Hi);
  EXPECT_LE(Q.boostHz(), 100000u);
}

} // namespace
