//===- dataflow_test.cpp - Section 7 dataflow experiment tests ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "dataflow/ReachingDefs.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

ReachSet logic(const Cfg &G) {
  auto R = reachingDefsLogic(G);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  return R ? R->Reaches : ReachSet();
}

TEST(Dataflow, LinearChain) {
  // n0: x:=..; n1: y:=..; n2: x:=..; n3: (no def)
  Cfg G = linearCfg({0, 1, 0, -1});
  ReachSet R = reachingDefsWorklist(G).Reaches;
  // def@0 reaches entry of 1 and 2, then is killed by node 2.
  EXPECT_TRUE(R.count({0, 1}));
  EXPECT_TRUE(R.count({0, 2}));
  EXPECT_FALSE(R.count({0, 3}));
  // def@2 reaches 3.
  EXPECT_TRUE(R.count({2, 3}));
  // def@1 (different variable) flows through.
  EXPECT_TRUE(R.count({1, 2}));
  EXPECT_TRUE(R.count({1, 3}));
  EXPECT_EQ(logic(G), R);
}

TEST(Dataflow, DiamondMerges) {
  // 0: x:=  -> cond 1 -> branches 2 (x:=) and 3 (y:=) -> join 4.
  Cfg G;
  uint32_t A = G.addNode(0);
  uint32_t C = G.addNode(-1);
  uint32_t T = G.addNode(0);
  uint32_t E = G.addNode(1);
  uint32_t J = G.addNode(-1);
  G.NumVars = 2;
  G.addEdge(A, C);
  G.addEdge(C, T);
  G.addEdge(C, E);
  G.addEdge(T, J);
  G.addEdge(E, J);
  ReachSet R = reachingDefsWorklist(G).Reaches;
  // At the join both x-defs may reach (through different branches).
  EXPECT_TRUE(R.count({A, J})); // via the else branch
  EXPECT_TRUE(R.count({T, J}));
  EXPECT_TRUE(R.count({E, J}));
  EXPECT_EQ(logic(G), R);
}

TEST(Dataflow, LoopCarriesDefinitions) {
  // 0: x:= -> 1: head -> 2: y:= (body) -> back to 1; 1 -> 3: exit.
  Cfg G;
  uint32_t X = G.addNode(0);
  uint32_t H = G.addNode(-1);
  uint32_t B = G.addNode(1);
  uint32_t Exit = G.addNode(-1);
  G.NumVars = 2;
  G.addEdge(X, H);
  G.addEdge(H, B);
  G.addEdge(B, H);
  G.addEdge(H, Exit);
  ReachSet R = reachingDefsWorklist(G).Reaches;
  EXPECT_TRUE(R.count({X, Exit}));
  EXPECT_TRUE(R.count({1u * B, H})); // loop-carried
  EXPECT_TRUE(R.count({B, Exit}));
  EXPECT_EQ(logic(G), R);
}

TEST(Dataflow, RedefinitionInLoopKills) {
  // x defined before a loop whose body redefines x: the pre-loop def
  // still reaches the loop head (first iteration) but the body def also
  // reaches it (back edge).
  Cfg G;
  uint32_t Pre = G.addNode(0);
  uint32_t H = G.addNode(-1);
  uint32_t Body = G.addNode(0);
  uint32_t Exit = G.addNode(-1);
  G.NumVars = 1;
  G.addEdge(Pre, H);
  G.addEdge(H, Body);
  G.addEdge(Body, H);
  G.addEdge(H, Exit);
  ReachSet R = reachingDefsWorklist(G).Reaches;
  EXPECT_TRUE(R.count({Pre, H}));
  EXPECT_TRUE(R.count({Body, H}));
  EXPECT_TRUE(R.count({Pre, Exit}));
  EXPECT_TRUE(R.count({Body, Exit}));
  EXPECT_FALSE(R.count({Pre, Body}) && !R.count({Pre, H}));
  EXPECT_EQ(logic(G), R);
}

TEST(Dataflow, DemandQueryMatchesExhaustive) {
  Cfg G = randomStructuredCfg(11, 60, 4);
  ReachSet Full = reachingDefsWorklist(G).Reaches;
  // Ask for three specific nodes through the demand interface.
  for (uint32_t N : {uint32_t(5), uint32_t(20), uint32_t(40)}) {
    auto At = reachingDefsAtLogic(G, N);
    ASSERT_TRUE(At.hasValue());
    std::set<uint32_t> Expected;
    for (const auto &[D, Node] : Full)
      if (Node == N)
        Expected.insert(D);
    EXPECT_EQ(*At, Expected) << "node " << N;
  }
}

class DataflowPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DataflowPropertyTest, LogicAndWorklistAgree) {
  Cfg G = randomStructuredCfg(GetParam(), 40 + GetParam() * 3, 3);
  auto L = reachingDefsLogic(G);
  ASSERT_TRUE(L.hasValue());
  ReachSet W = reachingDefsWorklist(G).Reaches;
  EXPECT_EQ(L->Reaches, W) << "seed " << GetParam() << ", " << G.size()
                           << " nodes";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowPropertyTest,
                         ::testing::Range(0u, 20u));

TEST(Dataflow, GeneratorProducesConnectedGraphs) {
  Cfg G = randomStructuredCfg(3, 100, 4);
  EXPECT_GE(G.size(), 100u);
  // Every node except maybe the last few bridges has a successor or is
  // the exit; entry is node 0; facts render without crashing.
  std::string Facts = G.toFacts();
  EXPECT_NE(Facts.find("edge(0,"), std::string::npos);
  EXPECT_NE(Facts.find("defs("), std::string::npos);
}

} // namespace
