//===- depthk_test.cpp - Depth-k abstraction tests ---------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "depthk/AbstractDomain.h"
#include "depthk/DepthK.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

//===----------------------------------------------------------------------===//
// AbstractDomain unit tests
//===----------------------------------------------------------------------===//

class DomainTest : public ::testing::Test {
protected:
  DomainTest() : Dom(Syms, 2) {}

  TermRef parse(const char *Text) {
    auto T = Parser::parseTerm(Syms, S, Text);
    EXPECT_TRUE(T.hasValue()) << Text;
    return *T;
  }
  TermRef gamma() { return S.mkAtom(Dom.gammaSymbol()); }
  std::string str(TermRef T) { return TermWriter::toString(Syms, S, T); }

  SymbolTable Syms;
  TermStore S;
  AbstractDomain Dom;
};

TEST_F(DomainTest, GammaUnifiesWithGroundTerms) {
  EXPECT_TRUE(Dom.unifyAbstract(S, gamma(), parse("f(a, b)")));
  EXPECT_TRUE(Dom.unifyAbstract(S, parse("42"), gamma()));
}

TEST_F(DomainTest, GammaGroundsVariables) {
  TermRef T = parse("f(X, g(Y))");
  ASSERT_TRUE(Dom.unifyAbstract(S, gamma(), T));
  // X and Y are now gamma: the term denotes only ground instances.
  EXPECT_TRUE(Dom.isGroundAbstract(S, T));
}

TEST_F(DomainTest, StructuralMismatchStillFails) {
  EXPECT_FALSE(Dom.unifyAbstract(S, parse("f(a)"), parse("g(a)")));
  EXPECT_FALSE(Dom.unifyAbstract(S, parse("a"), parse("b")));
}

TEST_F(DomainTest, OccursCheckHolds) {
  TermRef V = S.mkVar();
  TermRef F = S.mkStruct(Syms.intern("f"), std::span<const TermRef>(&V, 1));
  EXPECT_FALSE(Dom.unifyAbstract(S, V, F));
}

TEST_F(DomainTest, DepthCutGroundBecomesGamma) {
  std::unordered_map<TermRef, TermRef> R;
  // Depth 2: f(g(h(a))) cuts below g: h(a) is ground -> gamma.
  TermRef T = parse("f(g(h(a)))");
  TermRef Cut = Dom.depthCut(S, T, S, R);
  EXPECT_EQ(str(Cut), "f(g('$gamma'))");
}

TEST_F(DomainTest, DepthCutNonGroundBecomesVariable) {
  std::unordered_map<TermRef, TermRef> R;
  TermRef T = parse("f(g(h(X)))");
  TermRef Cut = Dom.depthCut(S, T, S, R);
  EXPECT_EQ(str(Cut), "f(g(_A))");
}

TEST_F(DomainTest, DepthCutPreservesShallowStructure) {
  std::unordered_map<TermRef, TermRef> R;
  TermRef T = parse("f(a, X, g(b))");
  TermRef Cut = Dom.depthCut(S, T, S, R);
  EXPECT_EQ(str(Cut), "f(a,_A,g(b))");
}

TEST_F(DomainTest, DepthCutSharedVariables) {
  std::unordered_map<TermRef, TermRef> R;
  TermRef T = parse("f(X, X)");
  TermRef Cut = Dom.depthCut(S, T, S, R);
  TermRef A0 = S.deref(S.arg(Cut, 0));
  TermRef A1 = S.deref(S.arg(Cut, 1));
  EXPECT_EQ(A0, A1);
}

TEST_F(DomainTest, GroundifyBindsAllVariables) {
  TermRef T = parse("f(X, g(Y, a))");
  Dom.groundify(S, T);
  EXPECT_TRUE(Dom.isGroundAbstract(S, T));
  EXPECT_EQ(str(T), "f('$gamma',g('$gamma',a))");
}

//===----------------------------------------------------------------------===//
// End-to-end depth-k analysis
//===----------------------------------------------------------------------===//

class DepthKTest : public ::testing::Test {
protected:
  DepthKResult analyze(const char *Source, unsigned Depth = 2) {
    SymbolTable Syms;
    DepthKAnalyzer::Options Opts;
    Opts.Depth = Depth;
    DepthKAnalyzer A(Syms, Opts);
    auto R = A.analyze(Source);
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
    return R ? std::move(*R) : DepthKResult();
  }
};

TEST_F(DepthKTest, AppendGroundness) {
  auto R = analyze(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  const DepthKPred *Ap = R.find("ap", 3);
  ASSERT_NE(Ap, nullptr);
  EXPECT_TRUE(Ap->CanSucceed);
  // Open call: nothing is ground on success in general.
  EXPECT_EQ(Ap->GroundOnSuccess, (std::vector<uint8_t>{0, 0, 0}));
}

TEST_F(DepthKTest, GroundFacts) {
  auto R = analyze("p(a, f(b)). p(c, f(d)).");
  const DepthKPred *P = R.find("p", 2);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->GroundOnSuccess, (std::vector<uint8_t>{1, 1}));
}

TEST_F(DepthKTest, ArithmeticGrounds) {
  auto R = analyze(R"(
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
  )");
  const DepthKPred *L = R.find("len", 2);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->GroundOnSuccess, (std::vector<uint8_t>{0, 1}));
}

TEST_F(DepthKTest, StructureIsMorePreciseThanProp) {
  // Depth-k tracks which *part* of a structure is ground: the Prop domain
  // can only say "arg 2 is not always ground"; depth-k sees pair(g, var).
  auto R = analyze("mk(X, pair(a, X)).");
  const DepthKPred *M = R.find("mk", 2);
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->AnswerPatterns.size(), 1u);
  EXPECT_EQ(M->AnswerPatterns[0], "mk(_A,pair(a,_A))");
}

TEST_F(DepthKTest, DeepTermsAreCutFinite) {
  // s(s(s(...))) recursion: depth cut keeps the table finite.
  auto R = analyze(R"(
    nat(z).
    nat(s(X)) :- nat(X).
  )", 2);
  const DepthKPred *N = R.find("nat", 1);
  ASSERT_NE(N, nullptr);
  EXPECT_TRUE(N->CanSucceed);
  // Patterns: z, s(z), s(s(...)) widened at depth 2.
  EXPECT_LE(N->AnswerPatterns.size(), 4u);
  EXPECT_GE(R.FixpointRounds, 2u);
}

TEST_F(DepthKTest, NeverSucceeds) {
  auto R = analyze("p(X) :- fail.");
  const DepthKPred *P = R.find("p", 1);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(P->CanSucceed);
}

TEST_F(DepthKTest, CallPatternsAreRecorded) {
  auto R = analyze(R"(
    main(Y) :- helper(a, Y).
    helper(X, X).
  )");
  const DepthKPred *H = R.find("helper", 2);
  ASSERT_NE(H, nullptr);
  // Two call patterns: the analyzer's open call and main's helper(a, _).
  EXPECT_EQ(H->CallPatterns.size(), 2u);
}

TEST_F(DepthKTest, DepthOneIsCoarserThanDepthTwo) {
  const char *Prog = "p(f(g(a))). p(f(g(b))).";
  auto R1 = analyze(Prog, 1);
  auto R2 = analyze(Prog, 3);
  const DepthKPred *P1 = R1.find("p", 1);
  const DepthKPred *P2 = R2.find("p", 1);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  // Depth 1 widens both facts to one pattern p(f(gamma)) [cut below f];
  // depth 3 keeps them apart.
  EXPECT_EQ(P1->AnswerPatterns.size(), 1u);
  EXPECT_EQ(P2->AnswerPatterns.size(), 2u);
  // Both agree the argument is ground.
  EXPECT_EQ(P1->GroundOnSuccess, P2->GroundOnSuccess);
}

TEST_F(DepthKTest, MetricsPopulated) {
  auto R = analyze("p(a).");
  EXPECT_GT(R.TableSpaceBytes, 0u);
  EXPECT_GE(R.NumCallPatterns, 1u);
  EXPECT_GE(R.NumAnswers, 1u);
}

} // namespace
