//===- engine_property_test.cpp - Engine equivalence properties --------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Cross-checks between independent evaluation mechanisms:
//  * supplementary tabling on/off must give identical answer sets;
//  * tabled and bounded nontabled evaluation agree on terminating queries;
//  * on randomly generated Datalog programs, the tabled engine's
//    groundness results must equal the bottom-up baseline's (a randomized
//    extension of Table 2's identical-results claim).
//
//===----------------------------------------------------------------------===//

#include "baseline/GaiaLike.h"
#include "engine/Solver.h"
#include "prop/Groundness.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace lpa;

namespace {

/// Collects the rendered solution set of Goal over a fresh solver.
std::set<std::string> solutions(const char *Program, const char *Goal,
                                bool Supplementary) {
  SymbolTable Syms;
  Database DB(Syms);
  auto L = DB.consult(Program);
  EXPECT_TRUE(L.hasValue()) << L.getError().str();
  Solver::Options Opts;
  Opts.SupplementaryTabling = Supplementary;
  Solver S(DB, Opts);
  auto G = Parser::parseTerm(Syms, S.store(), Goal);
  EXPECT_TRUE(G.hasValue());
  std::set<std::string> Out;
  S.solve(*G, [&]() {
    Out.insert(TermWriter::toString(Syms, S.storeConst(), *G));
    return false;
  });
  return Out;
}

struct SupplementaryCase {
  const char *Name;
  const char *Program;
  const char *Goal;
};

class SupplementaryEquivalence
    : public ::testing::TestWithParam<SupplementaryCase> {};

TEST_P(SupplementaryEquivalence, OnOffAgree) {
  const auto &C = GetParam();
  EXPECT_EQ(solutions(C.Program, C.Goal, true),
            solutions(C.Program, C.Goal, false))
      << C.Name;
}

const SupplementaryCase SupplementaryCases[] = {
    {"left_recursive_tc",
     ":- table path/2.\n"
     "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
     "path(X, Y) :- edge(X, Y).\n"
     "edge(a, b). edge(b, c). edge(c, a). edge(c, d).",
     "path(a, X)"},
    {"mutual_recursion",
     ":- table even/1.\n:- table odd/1.\n"
     "even(z). even(s(X)) :- odd(X). odd(s(X)) :- even(X).",
     "even(s(s(s(s(z)))))"},
    {"same_generation",
     ":- table sg/2.\n"
     "sg(X, X).\n"
     "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n"
     "par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1). par(c3, p2).",
     "sg(c1, Y)"},
    {"nonground_answers",
     ":- table p/2.\n"
     "p(X, Y) :- '='(X, f(Y)).\n"
     "p(a, b).",
     "p(A, B)"},
    {"arithmetic_guards",
     ":- table fib/2.\n"
     "fib(0, 0). fib(1, 1).\n"
     "fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n"
     "             fib(N1, F1), fib(N2, F2), F is F1 + F2.",
     "fib(15, F)"},
    {"impure_bodies_fall_back",
     ":- table q/1.\n"
     "q(X) :- p(X), !.\n"
     "q(X) :- r(X).\n"
     "p(1). p(2). r(3).",
     "q(X)"},
    {"negation_in_body",
     ":- table ok/1.\n"
     "ok(X) :- c(X), \\+ bad(X).\n"
     "c(1). c(2). c(3). bad(2).",
     "ok(X)"},
    {"shared_nontabled_helpers",
     ":- table tc/2.\n"
     "tc(X, Y) :- e(X, Y).\n"
     "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
     "e(X, Y) :- edge(X, Y).\n"
     "edge(a, b). edge(b, c). edge(b, d).",
     "tc(a, X)"},
};

INSTANTIATE_TEST_SUITE_P(Programs, SupplementaryEquivalence,
                         ::testing::ValuesIn(SupplementaryCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(TabledVsUntabled, AgreeOnTerminatingQueries) {
  // Right-recursive closure terminates both ways on a DAG.
  const char *Tabled = ":- table path/2.\n"
                       "path(X, Y) :- edge(X, Y).\n"
                       "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
                       "edge(a, b). edge(a, c). edge(b, d). edge(c, d). "
                       "edge(d, e).";
  const char *Untabled = "path(X, Y) :- edge(X, Y).\n"
                         "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
                         "edge(a, b). edge(a, c). edge(b, d). edge(c, d). "
                         "edge(d, e).";
  EXPECT_EQ(solutions(Tabled, "path(a, X)", true),
            solutions(Untabled, "path(a, X)", true));
}

//===----------------------------------------------------------------------===//
// Random Datalog programs: engine vs baseline groundness
//===----------------------------------------------------------------------===//

/// Generates a random program over predicates p0..p4 with facts and rules
/// mixing ground/nonground arguments, structures and chains of calls.
std::string randomProgram(std::mt19937 &Rng) {
  std::uniform_int_distribution<int> NumClauses(4, 14);
  std::uniform_int_distribution<int> PredD(0, 4);
  std::uniform_int_distribution<int> ArityD(1, 3);
  // Fixed arity per predicate index for well-formedness.
  int Arity[5];
  for (int &A : Arity)
    A = ArityD(Rng);

  auto Term = [&](int Depth) {
    std::string T;
    std::function<void(int)> Gen = [&](int D) {
      int Pick = static_cast<int>(Rng() % (D <= 0 ? 3 : 4));
      switch (Pick) {
      case 0:
        T += "X" + std::to_string(Rng() % 3); // Variable.
        break;
      case 1:
        T += (Rng() % 2) ? "a" : "b";
        break;
      case 2:
        T += std::to_string(Rng() % 3);
        break;
      default:
        T += "f(";
        Gen(D - 1);
        T += ",";
        Gen(D - 1);
        T += ")";
        break;
      }
    };
    Gen(Depth);
    return T;
  };

  auto Atom = [&](int Pred) {
    std::string A = "p" + std::to_string(Pred) + "(";
    for (int I = 0; I < Arity[Pred]; ++I) {
      if (I)
        A += ",";
      A += Term(2);
    }
    return A + ")";
  };

  std::string Prog;
  int N = NumClauses(Rng);
  for (int I = 0; I < N; ++I) {
    int Head = PredD(Rng);
    Prog += Atom(Head);
    int BodyLen = static_cast<int>(Rng() % 3);
    for (int B = 0; B < BodyLen; ++B)
      Prog += (B ? ", " : " :- ") + Atom(PredD(Rng));
    Prog += ".\n";
  }
  return Prog;
}

class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramTest, EngineAndBaselineGroundnessAgree) {
  std::mt19937 Rng(GetParam());
  std::string Prog = randomProgram(Rng);

  SymbolTable Syms1, Syms2;
  GroundnessAnalyzer Engine(Syms1);
  GaiaLikeAnalyzer Baseline(Syms2);
  auto RE = Engine.analyze(Prog);
  auto RB = Baseline.analyze(Prog);
  ASSERT_TRUE(RE.hasValue()) << Prog;
  ASSERT_TRUE(RB.hasValue()) << Prog;
  ASSERT_EQ(RE->Predicates.size(), RB->Predicates.size()) << Prog;
  for (size_t I = 0; I < RE->Predicates.size(); ++I)
    EXPECT_EQ(RE->Predicates[I].SuccessSet, RB->Predicates[I].SuccessSet)
        << "program:\n"
        << Prog << "predicate " << RE->Predicates[I].Name;
}

TEST_P(RandomProgramTest, SupplementaryOnOffGiveSameGroundness) {
  std::mt19937 Rng(GetParam() + 10000);
  std::string Prog = randomProgram(Rng);

  // Run the abstract program under both producer strategies via the
  // public analyzer (which uses the default) and a manual engine run.
  SymbolTable Syms1;
  GroundnessAnalyzer A1(Syms1);
  auto R1 = A1.analyze(Prog);
  ASSERT_TRUE(R1.hasValue());

  // Second run: transform by hand, evaluate with supplementary off.
  SymbolTable Syms2;
  PropTransformer T(Syms2);
  TermStore Abs;
  auto PP = T.transformText(Prog, Abs);
  ASSERT_TRUE(PP.hasValue());
  Database DB(Syms2);
  ASSERT_TRUE(DB.loadProgram(Abs, PP->Clauses).hasValue());
  DB.tableAllPredicates();
  Solver::Options Opts;
  Opts.SupplementaryTabling = false;
  Solver S(DB, Opts);
  for (PredKey P : PP->Predicates) {
    std::vector<TermRef> Args;
    for (uint32_t I = 0; I < P.Arity; ++I)
      Args.push_back(S.store().mkVar());
    SymbolId AbsSym = T.abstractSymbol(P.Sym);
    TermRef Call = P.Arity == 0 ? S.store().mkAtom(AbsSym)
                                : S.store().mkStruct(AbsSym, Args);
    size_t NumAnswers = 0;
    S.solve(Call, nullptr);
    const Subgoal *SG = S.findSubgoal(Call);
    if (SG)
      NumAnswers = S.answerCount(*SG);
    // Compare raw answer counts with the analyzer's expanded success set
    // only loosely (free variables expand), but emptiness must agree.
    const PredGroundness *PG = R1->find(Syms2.name(P.Sym), P.Arity);
    ASSERT_NE(PG, nullptr);
    EXPECT_EQ(PG->CanSucceed, NumAnswers > 0) << Prog;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(0u, 40u));

} // namespace
