//===- engine_test.cpp - SLD resolution and builtin tests -------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "term/TermCopy.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

#include <set>

using namespace lpa;

namespace {

/// Fixture: a database + solver, with helpers to consult programs and
/// collect solutions as rendered strings.
class EngineTest : public ::testing::Test {
protected:
  EngineTest() : DB(Syms), S(DB) {}

  void consult(const char *Text) {
    auto R = DB.consult(Text);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
  }

  /// Solves GoalText; returns rendered solutions of the whole goal term.
  std::vector<std::string> query(const char *GoalText) {
    auto Goal = Parser::parseTerm(Syms, S.store(), GoalText);
    EXPECT_TRUE(Goal.hasValue()) << GoalText;
    std::vector<std::string> Out;
    S.solve(*Goal, [&]() {
      Out.push_back(TermWriter::toString(Syms, S.storeConst(), *Goal));
      return false;
    });
    return Out;
  }

  size_t count(const char *GoalText) { return query(GoalText).size(); }

  SymbolTable Syms;
  Database DB;
  Solver S;
};

TEST_F(EngineTest, FactsSucceed) {
  consult("p(a). p(b).");
  EXPECT_EQ(count("p(a)"), 1u);
  EXPECT_EQ(count("p(c)"), 0u);
  EXPECT_EQ(count("p(X)"), 2u);
}

TEST_F(EngineTest, SolutionsEnumerateInClauseOrder) {
  consult("color(red). color(green). color(blue).");
  auto Sols = query("color(X)");
  ASSERT_EQ(Sols.size(), 3u);
  EXPECT_EQ(Sols[0], "color(red)");
  EXPECT_EQ(Sols[1], "color(green)");
  EXPECT_EQ(Sols[2], "color(blue)");
}

TEST_F(EngineTest, ConjunctionJoins) {
  consult("p(a). p(b). q(b). q(c).");
  auto Sols = query("(p(X), q(X))");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(Sols[0], "(p(b), q(b))");
}

TEST_F(EngineTest, RecursionOverLists) {
  consult(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  auto Sols = query("ap([1,2], [3], Z)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(Sols[0], "ap([1,2],[3],[1,2,3])");
  // Backward mode: split [1,2,3] in all 4 ways.
  EXPECT_EQ(count("ap(X, Y, [1,2,3])"), 4u);
}

TEST_F(EngineTest, ArithmeticBuiltins) {
  EXPECT_EQ(count("'is'(X, 3 + 4 * 2)"), 1u);
  auto Sols = query("'is'(X, 3 + 4 * 2)");
  EXPECT_EQ(Sols[0], "is(11,+(3,*(4,2)))");
  EXPECT_EQ(count("'<'(1, 2)"), 1u);
  EXPECT_EQ(count("'<'(2, 1)"), 0u);
  EXPECT_EQ(count("'=<'(2, 2)"), 1u);
  EXPECT_EQ(count("'=:='(4, 2 + 2)"), 1u);
  EXPECT_EQ(count("'is'(X, 1 // 0)"), 0u); // Division by zero fails.
}

TEST_F(EngineTest, PrologModSemantics) {
  auto Sols = query("'is'(X, -7 mod 3)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(Sols[0], "is(2,mod(-7,3))");
}

TEST_F(EngineTest, UnifyAndNotUnify) {
  EXPECT_EQ(count("'='(f(X, b), f(a, Y))"), 1u);
  EXPECT_EQ(count("'\\\\='(a, b)"), 1u);
  EXPECT_EQ(count("'\\\\='(X, b)"), 0u);
}

TEST_F(EngineTest, TypeTests) {
  EXPECT_EQ(count("atom(foo)"), 1u);
  EXPECT_EQ(count("atom(f(x))"), 0u);
  EXPECT_EQ(count("integer(3)"), 1u);
  EXPECT_EQ(count("var(X)"), 1u);
  EXPECT_EQ(count("nonvar(f(X))"), 1u);
  EXPECT_EQ(count("compound(f(X))"), 1u);
  EXPECT_EQ(count("atomic(3)"), 1u);
}

TEST_F(EngineTest, CutPrunesAlternatives) {
  consult(R"(
    max(X, Y, X) :- X >= Y, !.
    max(_, Y, Y).
    first(X, [X|_]) :- !.
  )");
  EXPECT_EQ(count("max(3, 2, M)"), 1u);
  auto Sols = query("max(3, 2, M)");
  EXPECT_EQ(Sols[0], "max(3,2,3)");
  auto Sols2 = query("max(2, 3, M)");
  ASSERT_EQ(Sols2.size(), 1u);
  EXPECT_EQ(Sols2[0], "max(2,3,3)");
  EXPECT_EQ(count("first(X, [1,2,3])"), 1u);
}

TEST_F(EngineTest, CutIsLocalToClause) {
  consult(R"(
    p(1). p(2).
    q(X) :- p(X), !.
    r(X, Y) :- q(X), p(Y).
  )");
  // The cut in q prunes p's alternatives inside q only.
  EXPECT_EQ(count("r(X, Y)"), 2u);
}

TEST_F(EngineTest, NegationAsFailure) {
  consult("p(a).");
  EXPECT_EQ(count("'\\\\+'(p(b))"), 1u);
  EXPECT_EQ(count("'\\\\+'(p(a))"), 0u);
  // Bindings made inside \+ do not leak.
  consult("ok(X) :- \\+ p(X).");
  EXPECT_EQ(count("ok(b)"), 1u);
}

TEST_F(EngineTest, DisjunctionAndIfThenElse) {
  consult("p(1). p(2).");
  EXPECT_EQ(count("(p(X) ; p(X))"), 4u);
  consult("sign(X, pos) :- (X > 0 -> true ; fail). "
          "sign(X, neg) :- (X > 0 -> fail ; true).");
  auto Sols = query("sign(3, S)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(Sols[0], "sign(3,pos)");
  auto Sols2 = query("sign(-3, S)");
  ASSERT_EQ(Sols2.size(), 1u);
  EXPECT_EQ(Sols2[0], "sign(-3,neg)");
}

TEST_F(EngineTest, IfThenElseCommitsToFirstConditionSolution) {
  consult("p(1). p(2). test(Y) :- (p(X) -> '='(Y, X) ; '='(Y, none)).");
  auto Sols = query("test(Y)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(Sols[0], "test(1)");
}

TEST_F(EngineTest, CallMeta) {
  consult("p(a). p(b).");
  EXPECT_EQ(count("call(p(X))"), 2u);
}

TEST_F(EngineTest, BetweenEnumerates) {
  EXPECT_EQ(count("between(1, 5, X)"), 5u);
  EXPECT_EQ(count("between(1, 5, 3)"), 1u);
  EXPECT_EQ(count("between(1, 5, 9)"), 0u);
}

TEST_F(EngineTest, FunctorArgUniv) {
  EXPECT_EQ(query("functor(f(a,b), N, A)")[0], "functor(f(a,b),f,2)");
  EXPECT_EQ(query("functor(T, f, 2)")[0], "functor(f(_A,_B),f,2)");
  EXPECT_EQ(query("arg(2, f(a,b), X)")[0], "arg(2,f(a,b),b)");
  EXPECT_EQ(query("'=..'(f(a,b), L)")[0], "=..(f(a,b),[f,a,b])");
  EXPECT_EQ(query("'=..'(T, [g,1,2])")[0], "=..(g(1,2),[g,1,2])");
}

TEST_F(EngineTest, UndefinedPredicateFails) {
  EXPECT_EQ(count("no_such_pred(a)"), 0u);
}

TEST_F(EngineTest, FirstArgIndexingPreservesSemantics) {
  consult(R"(
    t(a, 1). t(b, 2). t(c, 3). t(X, 0) :- atom(X).
  )");
  EXPECT_EQ(count("t(b, N)"), 2u); // t(b,2) and the var-headed clause.
  // With X unbound the atom(X) guard fails, leaving the three facts.
  EXPECT_EQ(count("t(X, N)"), 3u);
}

TEST_F(EngineTest, DeepRecursionHitsDepthLimitGracefully) {
  Solver::Options Opts;
  Opts.MaxDepth = 100;
  Solver Limited(DB, Opts);
  consult("loop :- loop.");
  auto Goal = Parser::parseTerm(Syms, Limited.store(), "loop");
  ASSERT_TRUE(Goal.hasValue());
  EXPECT_EQ(Limited.solve(*Goal, nullptr), 0u);
  EXPECT_GT(Limited.stats().DepthLimitHits, 0u);
}

TEST_F(EngineTest, SolveAllSnapshotsSurviveBacktracking) {
  consult("p(f(1)). p(f(2)).");
  auto Goal = Parser::parseTerm(Syms, S.store(), "p(X)");
  ASSERT_TRUE(Goal.hasValue());
  TermStore Out;
  auto Results = S.solveAll(*Goal, Out);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(TermWriter::toString(Syms, Out, Results[0]), "p(f(1))");
  EXPECT_EQ(TermWriter::toString(Syms, Out, Results[1]), "p(f(2))");
}

TEST_F(EngineTest, StopRequestEndsSearch) {
  consult("p(1). p(2). p(3).");
  auto Goal = Parser::parseTerm(Syms, S.store(), "p(X)");
  ASSERT_TRUE(Goal.hasValue());
  size_t Calls = 0;
  size_t N = S.solve(*Goal, [&]() {
    ++Calls;
    return Calls == 2;
  });
  EXPECT_EQ(N, 2u);
}

TEST_F(EngineTest, IffTruthTable) {
  // iff(X, Y, Z) is the truth table of X <-> Y /\ Z: 4 rows.
  auto Sols = query("iff(X, Y, Z)");
  std::set<std::string> Set(Sols.begin(), Sols.end());
  std::set<std::string> Expected{
      "iff(true,true,true)", "iff(false,false,true)",
      "iff(false,true,false)", "iff(false,false,false)"};
  EXPECT_EQ(Set, Expected);
}

TEST_F(EngineTest, IffRespectsBoundArguments) {
  EXPECT_EQ(count("iff(true, true, true)"), 1u);
  EXPECT_EQ(count("iff(true, false, true)"), 0u);
  EXPECT_EQ(count("iff(X, true, true)"), 1u);  // Forces X = true.
  EXPECT_EQ(count("iff(false, X, Y)"), 3u);
  EXPECT_EQ(count("iff(X)"), 1u);              // Empty conjunction: X = true.
}

TEST_F(EngineTest, IffSharedVariables) {
  // iff(X, X): X <-> X. Both rows satisfy.
  EXPECT_EQ(count("iff(X, X)"), 2u);
  // iff(X, X, Y): X <-> (X /\ Y): rows (t,t,t),(f,f,t),(f,f,f).
  EXPECT_EQ(count("iff(X, X, Y)"), 3u);
}

TEST_F(EngineTest, StatsCountResolutions) {
  consult("p(a). p(b).");
  S.resetStats();
  query("p(X)");
  EXPECT_GE(S.stats().ClauseResolutions, 2u);
}

} // namespace
