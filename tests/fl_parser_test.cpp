//===- fl_parser_test.cpp - FL frontend tests -------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "fl/FLParser.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

FLProgram parseOk(const char *Source) {
  auto P = FLParser::parse(Source);
  EXPECT_TRUE(P.hasValue()) << (P ? "" : P.getError().str());
  return P ? std::move(*P) : FLProgram();
}

TEST(FLParser, SimpleEquation) {
  auto P = parseOk("id(x) = x.");
  ASSERT_EQ(P.Equations.size(), 1u);
  EXPECT_EQ(P.Equations[0].Func, "id");
  ASSERT_EQ(P.Equations[0].Params.size(), 1u);
  EXPECT_EQ(P.Equations[0].Params[0].K, FLPattern::Kind::Var);
  EXPECT_EQ(P.Equations[0].Rhs.K, FLExpr::Kind::Var);
}

TEST(FLParser, AppendProgram) {
  auto P = parseOk(R"(
    ap(nil, ys) = ys.
    ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).
  )");
  ASSERT_EQ(P.Equations.size(), 2u);
  ASSERT_EQ(P.Functions.size(), 1u);
  EXPECT_EQ(P.Functions[0], (std::pair<std::string, uint32_t>("ap", 2)));

  // nil is a builtin 0-ary constructor; cons/2 auto-registered from the
  // pattern.
  const auto &Eq0 = P.Equations[0];
  EXPECT_EQ(Eq0.Params[0].K, FLPattern::Kind::Ctor);
  EXPECT_EQ(Eq0.Params[0].Name, "nil");
  EXPECT_EQ(Eq0.Params[1].K, FLPattern::Kind::Var);

  const auto &Eq1 = P.Equations[1];
  EXPECT_EQ(Eq1.Params[0].K, FLPattern::Kind::Ctor);
  EXPECT_EQ(Eq1.Params[0].Name, "cons");
  ASSERT_EQ(Eq1.Params[0].Args.size(), 2u);
  EXPECT_EQ(Eq1.Params[0].Args[0].K, FLPattern::Kind::Var);

  // rhs cons(x, ap(xs, ys)): Ctor with nested Call.
  EXPECT_EQ(Eq1.Rhs.K, FLExpr::Kind::Ctor);
  ASSERT_EQ(Eq1.Rhs.Args.size(), 2u);
  EXPECT_EQ(Eq1.Rhs.Args[1].K, FLExpr::Kind::Call);
  EXPECT_EQ(Eq1.Rhs.Args[1].Name, "ap");
}

TEST(FLParser, ArithmeticPrimitives) {
  auto P = parseOk("len(nil) = 0. len(cons(x, xs)) = 1 + len(xs).");
  const auto &Rhs = P.Equations[1].Rhs;
  EXPECT_EQ(Rhs.K, FLExpr::Kind::Prim);
  EXPECT_EQ(Rhs.Name, "+");
  ASSERT_EQ(P.Primitives.size(), 1u);
  EXPECT_EQ(P.Primitives[0], (std::pair<std::string, uint32_t>("+", 2)));
}

TEST(FLParser, IfAsUserFunction) {
  auto P = parseOk(R"(
    if(true, t, e) = t.
    if(false, t, e) = e.
    f(n) = if(n < 1, 0, f(n - 1)).
  )");
  EXPECT_EQ(P.functionArity("if"), 3);
  // In the 'if' equations, 'true'/'false' are constructors and t/e vars.
  EXPECT_EQ(P.Equations[0].Params[0].K, FLPattern::Kind::Ctor);
  EXPECT_EQ(P.Equations[0].Params[1].K, FLPattern::Kind::Var);
  // The call site: if(Prim, IntLit, Call).
  const auto &Rhs = P.Equations[2].Rhs;
  EXPECT_EQ(Rhs.K, FLExpr::Kind::Call);
  EXPECT_EQ(Rhs.Args[0].K, FLExpr::Kind::Prim);
  EXPECT_EQ(Rhs.Args[1].K, FLExpr::Kind::IntLit);
  EXPECT_EQ(Rhs.Args[2].K, FLExpr::Kind::Call);
}

TEST(FLParser, DataDeclaration) {
  auto P = parseOk(R"(
    :- data pair/2, mt/0.
    swap(pair(a, b)) = pair(b, a).
    mk(x) = mt.
  )");
  EXPECT_EQ(P.Equations[1].Rhs.K, FLExpr::Kind::Ctor);
  EXPECT_EQ(P.Equations[1].Rhs.Name, "mt");
}

TEST(FLParser, IntegerLiteralPatterns) {
  auto P = parseOk("fib(0) = 0. fib(1) = 1. fib(n) = fib(n-1) + fib(n-2).");
  EXPECT_EQ(P.Equations[0].Params[0].K, FLPattern::Kind::IntLit);
  EXPECT_EQ(P.Equations[0].Params[0].IntValue, 0);
  EXPECT_EQ(P.Equations[2].Params[0].K, FLPattern::Kind::Var);
}

TEST(FLParser, NestedPatterns) {
  auto P = parseOk("f(cons(pair(a, b), t)) = a.");
  const auto &Pat = P.Equations[0].Params[0];
  EXPECT_EQ(Pat.Name, "cons");
  EXPECT_EQ(Pat.Args[0].K, FLPattern::Kind::Ctor);
  EXPECT_EQ(Pat.Args[0].Name, "pair");
  // pair/2 was auto-registered.
  bool FoundPair = false;
  for (const auto &[N, A] : P.Constructors)
    FoundPair |= (N == "pair" && A == 2);
  EXPECT_TRUE(FoundPair);
}

TEST(FLParser, ErrorOnNonEquation) {
  auto P = FLParser::parse("p :- q.");
  EXPECT_FALSE(P.hasValue());
}

TEST(FLParser, ErrorOnNonLinearPattern) {
  auto P = FLParser::parse("f(x, x) = x.");
  EXPECT_FALSE(P.hasValue());
}

TEST(FLParser, ErrorOnFunctionInPattern) {
  auto P = FLParser::parse("g(x) = x. f(g(x)) = x.");
  EXPECT_FALSE(P.hasValue());
}

TEST(FLParser, ErrorOnUnknownRhsName) {
  auto P = FLParser::parse("f(x) = y.");
  EXPECT_FALSE(P.hasValue());
}

TEST(FLParser, ErrorOnArityMismatch) {
  auto P = FLParser::parse("f(x) = x. g(y) = f(y, y).");
  EXPECT_FALSE(P.hasValue());
}

TEST(FLParser, ZeroArityFunction) {
  auto P = parseOk("ones = cons(1, ones).");
  EXPECT_EQ(P.functionArity("ones"), 0);
  EXPECT_EQ(P.Equations[0].Rhs.Args[1].K, FLExpr::Kind::Call);
}

} // namespace
