//===- flight_recorder_test.cpp - Flight recorder + slowlog tests -------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Covers the daemon's black box and its consumers: the FlightRecorder's
// bounded ring (keep-last + counted drops, the RecordingSink contract),
// the raw and JSON exports, in-band post-mortem dumps — including the
// automatic dump a deadline anomaly triggers through AnalysisSession —
// the SlowQueryLog LRU and its adaptive threshold, slow-query exemplar
// capture, and the `slowlog`/`inspect` protocol round-trips with the new
// per-query outcome flags and health gauges.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "srv/Protocol.h"
#include "srv/Session.h"
#include "srv/SlowLog.h"
#include "support/JsonValue.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

using namespace lpa;

namespace {

//===----------------------------------------------------------------------===//
// Ring exactness (the RecordingSink contract)
//===----------------------------------------------------------------------===//

TEST(FlightRecorderRing, KeepLastWithCountedDrops) {
  FlightRecorder::Options O;
  O.Capacity = 8;
  FlightRecorder R(O);
  for (uint64_t I = 0; I < 20; ++I)
    R.record(FrEventKind::QueryStart, I);

  EXPECT_EQ(R.totalRecorded(), 20u);
  EXPECT_EQ(R.droppedCount(), 12u);
  ASSERT_EQ(R.events().size(), 8u);
  // The exact invariant the header promises.
  EXPECT_EQ(R.droppedCount() + R.events().size(), R.totalRecorded());
  // Keep-LAST: queries 12..19 survive, oldest first.
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(R.events()[I].QueryId, 12u + I);
}

TEST(FlightRecorderRing, UnwrappedRingKeepsArrivalOrder) {
  FlightRecorder::Options O;
  O.Capacity = 8;
  FlightRecorder R(O);
  for (uint64_t I = 0; I < 5; ++I)
    R.record(FrEventKind::QueryEnd, I);
  EXPECT_EQ(R.droppedCount(), 0u);
  ASSERT_EQ(R.events().size(), 5u);
  for (size_t I = 0; I < 5; ++I)
    EXPECT_EQ(R.events()[I].QueryId, I);
  EXPECT_EQ(R.count(FrEventKind::QueryEnd), 5u);
  EXPECT_EQ(R.count(FrEventKind::QueryStart), 0u);
}

TEST(FlightRecorderRing, ZeroCapacityIsUnbounded) {
  FlightRecorder::Options O;
  O.Capacity = 0;
  FlightRecorder R(O);
  for (uint64_t I = 0; I < 1000; ++I)
    R.record(FrEventKind::QueryStart, I);
  EXPECT_EQ(R.events().size(), 1000u);
  EXPECT_EQ(R.droppedCount(), 0u);
}

TEST(FlightRecorderRing, DetailIsTruncatedAndTerminated) {
  FlightRecorder R;
  std::string Long(200, 'x');
  R.record(FrEventKind::QueryStart, 1, 0, 0, 0, 0, Long);
  const FrEvent &E = R.events().front();
  size_t Len = std::string_view(E.Detail).size();
  EXPECT_EQ(Len, sizeof(E.Detail) - 1);
  EXPECT_EQ(std::string_view(E.Detail), Long.substr(0, Len));
}

TEST(FlightRecorderRing, EventsForQuerySlices) {
  FlightRecorder R;
  R.record(FrEventKind::QueryStart, 1);
  R.record(FrEventKind::QueryStart, 2);
  R.record(FrEventKind::QueryEnd, 1);
  auto Slice = R.eventsForQuery(1);
  ASSERT_EQ(Slice.size(), 2u);
  EXPECT_EQ(Slice[0].Kind, FrEventKind::QueryStart);
  EXPECT_EQ(Slice[1].Kind, FrEventKind::QueryEnd);
}

TEST(FlightRecorderRing, TimesAreMonotone) {
  FlightRecorder R;
  R.record(FrEventKind::QueryStart, 1);
  R.record(FrEventKind::QueryEnd, 1);
  EXPECT_LE(R.events()[0].TimeNs, R.events()[1].TimeNs);
}

//===----------------------------------------------------------------------===//
// Raw (signal-path) and JSON exports
//===----------------------------------------------------------------------===//

std::string readAll(const std::string &Path) {
  std::string Out;
  if (std::FILE *F = std::fopen(Path.c_str(), "r")) {
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Out.append(Buf, N);
    std::fclose(F);
  }
  return Out;
}

/// A fresh directory under the test temp root.
std::string freshDir(const char *Tag) {
  std::string D = testing::TempDir() + "lpa_fr_" + Tag + "_" +
                  std::to_string(::getpid());
  std::filesystem::remove_all(D);
  std::filesystem::create_directories(D);
  return D;
}

TEST(FlightRecorderDump, WriteRawToFormatsWrappedRing) {
  FlightRecorder::Options O;
  O.Capacity = 4;
  FlightRecorder R(O);
  for (uint64_t I = 0; I < 6; ++I)
    R.record(FrEventKind::QueryStart, I, /*A=*/7, 0, 0, 0, "goal");

  std::string Path = testing::TempDir() + "lpa_fr_raw_" +
                     std::to_string(::getpid()) + ".txt";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  R.writeRawTo(fileno(F));
  std::fclose(F);

  std::string Text = readAll(Path);
  EXPECT_NE(Text.find("total=6 dropped=2 kept=4"), std::string::npos);
  // Oldest kept event first — query 2 after two evictions.
  EXPECT_NE(Text.find("q2 query-start"), std::string::npos);
  EXPECT_NE(Text.find("q5 query-start"), std::string::npos);
  EXPECT_EQ(Text.find("q1 "), std::string::npos); // Evicted.
  EXPECT_NE(Text.find("a=7"), std::string::npos);
  EXPECT_NE(Text.find("goal"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(FlightRecorderDump, WriteJsonRoundTripsWithTailLimit) {
  FlightRecorder R;
  for (uint64_t I = 1; I <= 5; ++I)
    R.record(FrEventKind::QueryEnd, I, I * 10, 0, 0, FrOutcomeDeadline,
             "p(X)");

  std::string Out;
  JsonWriter W(Out);
  R.writeJson(W, /*MaxEvents=*/2);
  auto Doc = JsonValue::parse(Out);
  ASSERT_TRUE(Doc.hasValue()) << Out;
  EXPECT_DOUBLE_EQ(Doc->numberOr("total", 0), 5.0);
  EXPECT_DOUBLE_EQ(Doc->numberOr("dropped", 0), 0.0);
  const JsonValue *Evs = Doc->find("events");
  ASSERT_TRUE(Evs && Evs->isArray());
  ASSERT_EQ(Evs->items().size(), 2u); // Tail-limited.
  const JsonValue &Last = Evs->items().back();
  EXPECT_EQ(Last.stringOr("kind", ""), "query-end");
  EXPECT_DOUBLE_EQ(Last.numberOr("query", 0), 5.0);
  EXPECT_DOUBLE_EQ(Last.numberOr("a", 0), 50.0);
  EXPECT_DOUBLE_EQ(Last.numberOr("flags", 0), double(FrOutcomeDeadline));
  EXPECT_EQ(Last.stringOr("detail", ""), "p(X)");
}

TEST(FlightRecorderDump, DumpWritesReasonGaugesJournalAndStacks) {
  std::string Dir = freshDir("dump");
  FlightRecorder::Options O;
  O.DumpDir = Dir;
  FlightRecorder R(O);
  R.record(FrEventKind::DeadlineHit, 3, /*Depth=*/42);

  std::string Path =
      R.dump("deadline", {{"table_space_bytes", 1234}}, "main;solve 7\n");
  ASSERT_FALSE(Path.empty());
  EXPECT_EQ(R.dumpsWritten(), 1u);

  std::string Text = readAll(Path);
  EXPECT_NE(Text.find("reason: deadline"), std::string::npos);
  EXPECT_NE(Text.find("table_space_bytes: 1234"), std::string::npos);
  EXPECT_NE(Text.find("== flight recorder =="), std::string::npos);
  EXPECT_NE(Text.find("deadline-hit"), std::string::npos);
  EXPECT_NE(Text.find("main;solve 7"), std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(FlightRecorderDump, DisabledAndRateCapped) {
  FlightRecorder NoDir;
  EXPECT_EQ(NoDir.dump("x", {}, ""), "");
  EXPECT_EQ(NoDir.dumpsWritten(), 0u);

  std::string Dir = freshDir("cap");
  FlightRecorder::Options O;
  O.DumpDir = Dir;
  O.MaxDumps = 2;
  FlightRecorder R(O);
  EXPECT_FALSE(R.dump("one", {}, "").empty());
  EXPECT_FALSE(R.dump("two", {}, "").empty());
  EXPECT_TRUE(R.dump("three", {}, "").empty()); // Capped.
  EXPECT_EQ(R.dumpsWritten(), 2u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// SlowQueryLog: LRU semantics and the adaptive threshold
//===----------------------------------------------------------------------===//

SlowQueryExemplar exemplar(uint64_t Id) {
  SlowQueryExemplar E;
  E.Id = Id;
  E.Goal = "g" + std::to_string(Id);
  E.WallMs = double(Id);
  return E;
}

TEST(SlowLogTest, LruEvictsLeastRecentlyTouched) {
  SlowQueryLog::Options O;
  O.Capacity = 2;
  SlowQueryLog L(O);
  L.insert(exemplar(1));
  L.insert(exemplar(2));
  // Touch 1 so it outlives the older-by-insertion 2.
  ASSERT_NE(L.get(1), nullptr);
  L.insert(exemplar(3));

  EXPECT_EQ(L.size(), 2u);
  EXPECT_EQ(L.captured(), 3u);
  EXPECT_EQ(L.evicted(), 1u);
  EXPECT_EQ(L.get(2), nullptr); // The untouched entry went.
  EXPECT_NE(L.get(1), nullptr);
  EXPECT_NE(L.get(3), nullptr);

  // entries() is most-recently-touched first: get(3) above refreshed 3.
  auto Es = L.entries();
  ASSERT_EQ(Es.size(), 2u);
  EXPECT_EQ(Es[0]->Id, 3u);
  EXPECT_EQ(Es[1]->Id, 1u);
}

TEST(SlowLogTest, ReinsertSameIdReplacesInPlace) {
  SlowQueryLog::Options O;
  O.Capacity = 2;
  SlowQueryLog L(O);
  L.insert(exemplar(1));
  L.insert(exemplar(2));
  SlowQueryExemplar E = exemplar(1);
  E.WallMs = 99;
  L.insert(std::move(E));
  EXPECT_EQ(L.size(), 2u);
  EXPECT_EQ(L.evicted(), 0u);
  EXPECT_DOUBLE_EQ(L.get(1)->WallMs, 99.0);
}

TEST(SlowLogTest, ThresholdModes) {
  SlowQueryLog::Options O;
  O.ThresholdMs = 25;
  EXPECT_DOUBLE_EQ(SlowQueryLog(O).effectiveThresholdMs(999999), 25.0);

  O.ThresholdMs = -1;
  EXPECT_LT(SlowQueryLog(O).effectiveThresholdMs(0), 0.0);
  EXPECT_FALSE(SlowQueryLog(O).shouldCapture(1e9, 0));

  // Adaptive: max(MinWallMs, Factor * p95). Empty window -> the floor.
  O.ThresholdMs = 0;
  O.MinWallMs = 10;
  O.AdaptiveFactor = 3;
  SlowQueryLog A(O);
  EXPECT_DOUBLE_EQ(A.effectiveThresholdMs(0), 10.0);
  // p95 = 2ms -> 3 * 2 = 6ms, still under the floor.
  EXPECT_DOUBLE_EQ(A.effectiveThresholdMs(2000), 10.0);
  // p95 = 20ms -> 60ms.
  EXPECT_DOUBLE_EQ(A.effectiveThresholdMs(20000), 60.0);
  EXPECT_TRUE(A.shouldCapture(60.0, 20000));
  EXPECT_FALSE(A.shouldCapture(59.0, 20000));
}

//===----------------------------------------------------------------------===//
// Session integration: exemplar capture and anomaly dumps
//===----------------------------------------------------------------------===//

const char *PathProgramReq =
    R"j({"op":"consult","program":":- table path/2. edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Y) :- edge(X,Z), path(Z,Y)."})j";

JsonValue respond(AnalysisSession &Session, const std::string &Line) {
  bool Quit = false;
  std::string Resp = handleRequestLine(Session, Line, Quit);
  auto V = JsonValue::parse(Resp);
  EXPECT_TRUE(V.hasValue()) << "unparsable response: " << Resp;
  return V.hasValue() ? *V : JsonValue();
}

/// A chain long enough that a 1 ms deadline reliably fires mid-closure
/// (the same shape srv_test's solver-level deadline test uses).
std::string longChainProgram(int N = 2000) {
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    Prog += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 1) +
            ").\n";
  return Prog;
}

TEST(SessionSlowLog, FixedThresholdCapturesExemplar) {
  AnalysisSession::Options SO;
  SO.SlowLog.ThresholdMs = 1e-9; // Everything is slow.
  AnalysisSession Session(SO);
  ASSERT_TRUE(Session
                  .consult(":- table path/2. edge(a,b). edge(b,c). "
                           "path(X,Y) :- edge(X,Y). "
                           "path(X,Y) :- edge(X,Z), path(Z,Y).")
                  .hasValue());
  auto R = Session.runQuery("path(a, X)");
  ASSERT_TRUE(R.hasValue());

  ASSERT_EQ(Session.slowlog().size(), 1u);
  const SlowQueryExemplar *E = Session.slowlog().get(R->Id);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Goal, "path(a, X)");
  EXPECT_EQ(E->Solutions, 2u);
  EXPECT_FALSE(E->DeadlineHit);
  ASSERT_FALSE(E->TopPreds.empty());
  bool SawPath = false;
  for (const SlowQueryExemplar::PredDelta &D : E->TopPreds)
    if (D.Pred == "path/2") {
      SawPath = true;
      EXPECT_GT(D.Resolutions, 0u);
    }
  EXPECT_TRUE(SawPath);
  EXPECT_FALSE(E->TopTables.empty());
  EXPECT_GT(E->TopTables.front().Bytes, 0u);
  // The recorder slice: this query's start and end made it in.
  ASSERT_GE(E->Trace.size(), 2u);
  EXPECT_EQ(E->Trace.front().Kind, FrEventKind::QueryStart);
  EXPECT_EQ(E->Trace.back().Kind, FrEventKind::QueryEnd);

  // A fast-enough threshold records nothing.
  AnalysisSession::Options Off;
  Off.SlowLog.ThresholdMs = -1;
  AnalysisSession Quiet(Off);
  ASSERT_TRUE(Quiet.consult("edge(a,b).").hasValue());
  ASSERT_TRUE(Quiet.runQuery("edge(a, X)").hasValue());
  EXPECT_EQ(Quiet.slowlog().size(), 0u);
}

TEST(SessionSlowLog, DeadlineAnomalyWritesPostMortem) {
  std::string Dir = freshDir("anomaly");
  AnalysisSession::Options SO;
  SO.Recorder.DumpDir = Dir;
  SO.SlowLog.ThresholdMs = -1; // Isolate the dump path.
  AnalysisSession Session(SO);
  ASSERT_TRUE(Session.consult(longChainProgram()).hasValue());

  auto R = Session.runQuery("path(n0, X)", /*MaxSolutions=*/10,
                            /*DeadlineMs=*/1);
  ASSERT_TRUE(R.hasValue());
  ASSERT_TRUE(R->Truncated); // The 1 ms deadline fired mid-closure.

  EXPECT_GE(Session.flightRecorder().dumpsWritten(), 1u);
  // Exactly the sections dumpAnomaly promises, in the file it wrote.
  std::string Found;
  for (const auto &Ent : std::filesystem::directory_iterator(Dir))
    if (Ent.path().string().find("deadline") != std::string::npos)
      Found = Ent.path().string();
  ASSERT_FALSE(Found.empty()) << "no post-mortem file in " << Dir;
  std::string Text = readAll(Found);
  EXPECT_NE(Text.find("reason: deadline"), std::string::npos);
  EXPECT_NE(Text.find("table_space_bytes:"), std::string::npos);
  EXPECT_NE(Text.find("deadline-hit"), std::string::npos);
  EXPECT_NE(Text.find("query-start"), std::string::npos);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Protocol round-trips: outcome flags, slowlog, inspect, health gauges
//===----------------------------------------------------------------------===//

TEST(ProtocolObs, QueryResponseCarriesOutcomeFlags) {
  AnalysisSession Session;
  respond(Session, PathProgramReq);
  JsonValue Q = respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  ASSERT_TRUE(Q.find("deadline_hit"));
  EXPECT_FALSE(Q.find("deadline_hit")->asBool());
  ASSERT_TRUE(Q.find("incomplete"));
  EXPECT_FALSE(Q.find("incomplete")->asBool());

  // And they trip together with "truncated" when the deadline fires.
  AnalysisSession Slow;
  ASSERT_TRUE(Slow.consult(longChainProgram()).hasValue());
  JsonValue T = respond(
      Slow, R"j({"op":"query","goal":"path(n0,X)","deadline_ms":1})j");
  EXPECT_TRUE(T.find("truncated")->asBool());
  EXPECT_TRUE(T.find("deadline_hit")->asBool());
  EXPECT_TRUE(T.find("incomplete")->asBool());
}

TEST(ProtocolObs, SlowlogRoundTrip) {
  AnalysisSession::Options SO;
  SO.SlowLog.ThresholdMs = 1e-9;
  AnalysisSession Session(SO);
  respond(Session, PathProgramReq);
  respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  respond(Session, R"j({"op":"query","goal":"path(b,X)"})j");

  JsonValue S = respond(Session, R"j({"op":"slowlog"})j");
  EXPECT_TRUE(S.find("ok")->asBool());
  const JsonValue *SL = S.find("slowlog");
  ASSERT_TRUE(SL && SL->isObject());
  EXPECT_EQ(SL->stringOr("schema", ""), "lpa.slowlog.v1");
  EXPECT_DOUBLE_EQ(SL->numberOr("count", 0), 2.0);
  EXPECT_DOUBLE_EQ(SL->numberOr("captured", 0), 2.0);
  const JsonValue *Es = SL->find("entries");
  ASSERT_TRUE(Es && Es->isArray());
  ASSERT_EQ(Es->items().size(), 2u);
  // Most-recent first.
  EXPECT_EQ(Es->items()[0].stringOr("goal", ""), "path(b,X)");
  EXPECT_DOUBLE_EQ(Es->items()[0].numberOr("id", 0), 2.0);
  ASSERT_TRUE(Es->items()[0].find("top_preds"));
  ASSERT_TRUE(Es->items()[0].find("trace"));
  EXPECT_FALSE(Es->items()[0].find("trace")->items().empty());

  // The REPL rendering of the same store mentions both goals.
  std::string Report = Session.slowlogReport();
  EXPECT_NE(Report.find("path(a,X)"), std::string::npos);
  EXPECT_NE(Report.find("path(b,X)"), std::string::npos);
}

TEST(ProtocolObs, InspectRoundTrip) {
  AnalysisSession Session;
  respond(Session, PathProgramReq);
  respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");

  JsonValue I = respond(Session, R"j({"op":"inspect","top":3})j");
  EXPECT_TRUE(I.find("ok")->asBool());
  const JsonValue *In = I.find("inspect");
  ASSERT_TRUE(In && In->isObject());
  EXPECT_EQ(In->stringOr("schema", ""), "lpa.inspect.v1");
  EXPECT_EQ(In->stringOr("sort", ""), "bytes");

  const JsonValue *Totals = In->find("totals");
  ASSERT_TRUE(Totals);
  EXPECT_GT(Totals->numberOr("subgoals", 0), 0.0);
  EXPECT_GT(Totals->numberOr("table_space_bytes", 0), 0.0);
  EXPECT_GT(Totals->numberOr("warm_hits", 0), 0.0);

  const JsonValue *Tables = In->find("top_tables");
  ASSERT_TRUE(Tables && Tables->isArray());
  ASSERT_FALSE(Tables->items().empty());
  EXPECT_LE(Tables->items().size(), 3u);
  const JsonValue &T0 = Tables->items()[0];
  EXPECT_FALSE(T0.stringOr("call", "").empty());
  EXPECT_GT(T0.numberOr("bytes", 0), 0.0);
  // Sorted descending by bytes.
  double Prev = T0.numberOr("bytes", 0);
  for (const JsonValue &T : Tables->items()) {
    EXPECT_LE(T.numberOr("bytes", 0), Prev);
    Prev = T.numberOr("bytes", 0);
  }

  const JsonValue *Preds = In->find("predicates");
  ASSERT_TRUE(Preds && Preds->isArray());
  bool SawPath = false;
  for (const JsonValue &P : Preds->items())
    if (P.stringOr("pred", "") == "path/2") {
      SawPath = true;
      EXPECT_GT(P.numberOr("warm_hit_rate", 0), 0.0);
      EXPECT_GT(P.numberOr("table_bytes", 0), 0.0);
    }
  EXPECT_TRUE(SawPath);

  const JsonValue *Dep = In->find("dep_index");
  ASSERT_TRUE(Dep);
  EXPECT_GT(Dep->numberOr("edges", 0), 0.0);
  ASSERT_TRUE(In->find("shared_space"));
  ASSERT_TRUE(In->find("shared_space")->find("shards"));

  const JsonValue *Rec = In->find("recorder");
  ASSERT_TRUE(Rec && Rec->isObject());
  EXPECT_GT(Rec->numberOr("total", 0), 0.0);
  EXPECT_FALSE(Rec->find("events")->items().empty());

  // Sort by answers is accepted; bad arguments are errors, not crashes.
  JsonValue ByAns =
      respond(Session, R"j({"op":"inspect","top":1,"sort":"answers"})j");
  EXPECT_TRUE(ByAns.find("ok")->asBool());
  EXPECT_EQ(ByAns.find("inspect")->stringOr("sort", ""), "answers");
  JsonValue Bad = respond(Session, R"j({"op":"inspect","sort":"wat"})j");
  EXPECT_FALSE(Bad.find("ok")->asBool());
}

TEST(ProtocolObs, HealthCarriesLongUptimeGauges) {
  AnalysisSession Session;
  respond(Session, PathProgramReq);
  respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");

  JsonValue H = respond(Session, R"j({"op":"health"})j");
  const JsonValue *Health = H.find("health");
  ASSERT_TRUE(Health && Health->isObject());
  EXPECT_GT(Health->numberOr("dep_index_edges", 0), 0.0);
  ASSERT_TRUE(Health->find("dep_index_bytes"));
  ASSERT_TRUE(Health->find("shared_retired"));
  EXPECT_GT(Health->numberOr("recorder_events", 0), 0.0);
  ASSERT_TRUE(Health->find("recorder_dropped"));
  ASSERT_TRUE(Health->find("postmortem_dumps"));
  ASSERT_TRUE(Health->find("slowlog_entries"));
}

TEST(ProtocolObs, ConsultAndRetractLandInTheJournal) {
  AnalysisSession Session;
  respond(Session, PathProgramReq);
  respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  respond(Session, R"j({"op":"retract","clause":"edge(a,b)."})j");

  FlightRecorder &Fr = Session.flightRecorder();
  EXPECT_EQ(Fr.count(FrEventKind::ConsultSweep), 1u);
  EXPECT_EQ(Fr.count(FrEventKind::RetractSweep), 1u);
  // The retract invalidated the warm path cone; the sweep event says so.
  for (const FrEvent &E : Fr.events())
    if (E.Kind == FrEventKind::RetractSweep) {
      EXPECT_EQ(E.A, 1u);  // One clause retracted.
      EXPECT_GE(E.B, 1u);  // At least one table invalidated.
    }
}

} // namespace
