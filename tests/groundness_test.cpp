//===- groundness_test.cpp - End-to-end Prop groundness tests ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// These tests check the analysis *results* of Section 3.1 / Figure 2: the
// success set of gp_ap/3 is exactly the truth table of x /\ y <-> z, and
// input groundness falls out of the call tables.
//
//===----------------------------------------------------------------------===//

#include "prop/Groundness.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

TruthTable table(std::initializer_list<std::initializer_list<int>> Rows) {
  TruthTable T;
  for (const auto &R : Rows) {
    BoolTuple Row;
    for (int V : R)
      Row.push_back(static_cast<uint8_t>(V));
    T.insert(Row);
  }
  return T;
}

class GroundnessTest : public ::testing::Test {
protected:
  GroundnessResult analyze(const char *Source) {
    GroundnessAnalyzer A(Syms);
    auto R = A.analyze(Source);
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
    return R ? *R : GroundnessResult();
  }

  SymbolTable Syms;
};

TEST_F(GroundnessTest, Figure2AppendSuccessSet) {
  auto R = analyze(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  const PredGroundness *Ap = R.find("ap", 3);
  ASSERT_NE(Ap, nullptr);
  // The paper: success set of gp_ap(X,Y,Z) is the truth table of
  // X /\ Y <-> Z: {(t,t,t),(t,f,f),(f,t,f),(f,f,f)}.
  EXPECT_EQ(Ap->SuccessSet,
            table({{1, 1, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 0}}));
  EXPECT_TRUE(Ap->CanSucceed);
  // No argument is ground in every solution.
  EXPECT_EQ(Ap->GroundOnSuccess, (std::vector<uint8_t>{0, 0, 0}));
}

TEST_F(GroundnessTest, GroundFactsYieldAllTrue) {
  auto R = analyze("p(a, b). p(c, d).");
  const PredGroundness *P = R.find("p", 2);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->SuccessSet, table({{1, 1}}));
  EXPECT_EQ(P->GroundOnSuccess, (std::vector<uint8_t>{1, 1}));
}

TEST_F(GroundnessTest, FreeVariableFactAllowsBoth) {
  auto R = analyze("p(X, a).");
  const PredGroundness *P = R.find("p", 2);
  ASSERT_NE(P, nullptr);
  // First argument free: both rows; second always ground.
  EXPECT_EQ(P->SuccessSet, table({{1, 1}, {0, 1}}));
  EXPECT_EQ(P->GroundOnSuccess, (std::vector<uint8_t>{0, 1}));
}

TEST_F(GroundnessTest, NeverSucceedingPredicate) {
  auto R = analyze("p(X) :- fail.");
  const PredGroundness *P = R.find("p", 1);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(P->CanSucceed);
  EXPECT_TRUE(P->SuccessSet.empty());
}

TEST_F(GroundnessTest, GroundnessPropagatesThroughCalls) {
  auto R = analyze(R"(
    base(a).
    derived(X) :- base(X).
  )");
  const PredGroundness *D = R.find("derived", 1);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->SuccessSet, table({{1}}));
}

TEST_F(GroundnessTest, RecursionWithAccumulator) {
  // reverse/3 with accumulator: if acc and input are ground, output is.
  auto R = analyze(R"(
    rev([], Acc, Acc).
    rev([X|Xs], Acc, R) :- rev(Xs, [X|Acc], R).
  )");
  const PredGroundness *Rev = R.find("rev", 3);
  ASSERT_NE(Rev, nullptr);
  // Success implies in /\ acc <-> out, same shape as append.
  EXPECT_EQ(Rev->SuccessSet,
            table({{1, 1, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 0}}));
}

TEST_F(GroundnessTest, ArithmeticMakesResultGround) {
  auto R = analyze(R"(
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
  )");
  const PredGroundness *Len = R.find("len", 2);
  ASSERT_NE(Len, nullptr);
  // The length is ground in every solution; the list need not be.
  EXPECT_EQ(Len->GroundOnSuccess, (std::vector<uint8_t>{0, 1}));
  // Second argument true in all rows.
  for (const BoolTuple &Row : Len->SuccessSet)
    EXPECT_TRUE(Row[1]);
}

TEST_F(GroundnessTest, InputPatternsFromCallTable) {
  auto R = analyze(R"(
    main(Y) :- helper(a, Y).
    helper(X, X).
  )");
  const PredGroundness *H = R.find("helper", 2);
  ASSERT_NE(H, nullptr);
  // helper is called from main with a ground first argument, and with the
  // open call issued by the analyzer itself.
  EXPECT_TRUE(H->CallPatterns.count(BoolTuple{1, 0}));
  EXPECT_TRUE(H->CallPatterns.count(BoolTuple{0, 0}));
}

TEST_F(GroundnessTest, QuicksortIsGroundPreserving) {
  auto R = analyze(R"(
    qsort([], []).
    qsort([X|Xs], S) :-
        part(Xs, X, L, G), qsort(L, SL), qsort(G, SG),
        app(SL, [X|SG], S).
    part([], _, [], []).
    part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
    part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
  )");
  const PredGroundness *Q = R.find("qsort", 2);
  ASSERT_NE(Q, nullptr);
  // qsort([X], [X]) succeeds with X unbound (the part([],_,[],[]) base
  // case never compares the pivot), so the success set is x <-> y — the
  // analysis is more precise than the naive "always ground" guess.
  EXPECT_EQ(Q->SuccessSet, table({{1, 1}, {0, 0}}));
  const PredGroundness *P = R.find("part", 4);
  ASSERT_NE(P, nullptr);
  // The pivot (arg 2) may stay nonground when the list is empty.
  EXPECT_EQ(P->GroundOnSuccess, (std::vector<uint8_t>{1, 0, 1, 1}));
}

TEST_F(GroundnessTest, MutualRecursion) {
  auto R = analyze(R"(
    even(0).
    even(N) :- N > 0, M is N - 1, odd(M).
    odd(N) :- N > 0, M is N - 1, even(M).
  )");
  const PredGroundness *E = R.find("even", 1);
  const PredGroundness *O = R.find("odd", 1);
  ASSERT_NE(E, nullptr);
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(E->SuccessSet, table({{1}}));
  EXPECT_EQ(O->SuccessSet, table({{1}}));
}

TEST_F(GroundnessTest, PhaseTimingsAreRecorded) {
  auto R = analyze("p(a).");
  EXPECT_GE(R.PreprocSeconds, 0.0);
  EXPECT_GE(R.AnalysisSeconds, 0.0);
  EXPECT_GE(R.CollectSeconds, 0.0);
  EXPECT_GT(R.TableSpaceBytes, 0u);
}

TEST_F(GroundnessTest, ZeroArityPredicate) {
  auto R = analyze("main :- p(a). p(X).");
  const PredGroundness *M = R.find("main", 0);
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(M->CanSucceed);
  EXPECT_EQ(M->SuccessSet, table({{}}));
}

TEST_F(GroundnessTest, ModeStringRendering) {
  auto R = analyze("p(a, X).");
  const PredGroundness *P = R.find("p", 2);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->modeString(), "p(g,?) <- p(?,?)");
}

TEST_F(GroundnessTest, NonLinearHeadSharing) {
  // p(X, X): arguments always equi-ground.
  auto R = analyze("p(X, X).");
  const PredGroundness *P = R.find("p", 2);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->SuccessSet, table({{1, 1}, {0, 0}}));
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Section 6.2: aggregated (mode-level) analysis
//===----------------------------------------------------------------------===//

class AggregatedGroundnessTest : public ::testing::Test {
protected:
  GroundnessResult analyzeWith(const char *Source, bool Aggregate) {
    SymbolTable Syms;
    GroundnessAnalyzer::Options Opts;
    Opts.AggregateModes = Aggregate;
    GroundnessAnalyzer A(Syms, Opts);
    auto R = A.analyze(Source);
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
    return R ? *R : GroundnessResult();
  }
};

TEST_F(AggregatedGroundnessTest, AppendModesSurvivesAggregation) {
  const char *Ap = R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )";
  auto Agg = analyzeWith(Ap, true);
  const PredGroundness *P = Agg.find("ap", 3);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->CanSucceed);
  // The summary of append's truth table is (?,?,?): no argument is ground
  // in every solution.
  EXPECT_EQ(P->GroundOnSuccess, (std::vector<uint8_t>{0, 0, 0}));
}

TEST_F(AggregatedGroundnessTest, DefiniteGroundnessIsPreservedWhenUniform) {
  // When every solution agrees, aggregation loses nothing.
  auto Agg = analyzeWith("p(a, X). p(b, Y).", true);
  const PredGroundness *P = Agg.find("p", 2);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->GroundOnSuccess, (std::vector<uint8_t>{1, 0}));
}

TEST_F(AggregatedGroundnessTest, AggregationIsSoundWrtFullAnalysis) {
  // Aggregated "definitely ground" must imply full-Prop "definitely
  // ground" (the aggregate is an over-approximation).
  const char *Prog = R"(
    qsort([], []).
    qsort([X|Xs], S) :-
        part(Xs, X, L, G), qsort(L, SL), qsort(G, SG),
        app(SL, [X|SG], S).
    part([], _, [], []).
    part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
    part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
  )";
  auto Full = analyzeWith(Prog, false);
  auto Agg = analyzeWith(Prog, true);
  ASSERT_EQ(Full.Predicates.size(), Agg.Predicates.size());
  for (size_t I = 0; I < Full.Predicates.size(); ++I) {
    const PredGroundness &F = Full.Predicates[I];
    const PredGroundness &G = Agg.Predicates[I];
    // full CanSucceed implies aggregated CanSucceed (over-approximation).
    EXPECT_TRUE(!F.CanSucceed || G.CanSucceed) << F.Name;
    for (uint32_t A = 0; A < F.Arity; ++A)
      EXPECT_TRUE(!G.GroundOnSuccess[A] || F.GroundOnSuccess[A])
          << F.Name << " arg " << A;
  }
}

TEST_F(AggregatedGroundnessTest, TablesShrink) {
  const char *Prog = R"(
    p(X1, X2, X3, X4) :- q(X1), q(X2), q(X3), q(X4).
    q(a). q(X).
  )";
  auto Full = analyzeWith(Prog, false);
  auto Agg = analyzeWith(Prog, true);
  EXPECT_LT(Agg.Stats.AnswersRecorded + 8, Full.Stats.AnswersRecorded + 8);
  EXPECT_LE(Agg.TableSpaceBytes, Full.TableSpaceBytes);
}

} // namespace
