//===- incompleteness_test.cpp - Depth-limit truncation soundness -----------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The depth limit is a safety net, but a net with a hole: when it fires
// during a tabled producer run, the table completes while missing answers,
// and everything downstream silently treats the truncated set as the
// minimal model. These tests pin the fix: truncation poisons the subgoal
// (Subgoal::Incomplete), poison spreads to consumers and across the SCC,
// the count lands in EvalStats::IncompleteTables, and the analyzers refuse
// to report truncated results unless the caller opts into the explicit
// warning mode (AllowIncomplete).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "depthk/DepthK.h"
#include "engine/Solver.h"
#include "prop/Groundness.h"
#include "reader/Parser.h"
#include "strictness/Strictness.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

// A tabled predicate over a non-tabled linear recursion: the step/2 walk
// deepens by one frame per edge, so a small MaxDepth prunes the far end of
// the chain out of reach/1's answer table.
const char *ChainProgram = R"(
  :- table reach/1.
  reach(X) :- step(c0, X).
  step(X, X).
  step(X, Y) :- edge(X, Z), step(Z, Y).
  edge(c0, c1). edge(c1, c2). edge(c2, c3). edge(c3, c4).
  edge(c4, c5). edge(c5, c6). edge(c6, c7). edge(c7, c8).
  edge(c8, c9). edge(c9, c10).
)";

size_t countReach(SymbolTable &Syms, Solver &S) {
  auto Goal = Parser::parseTerm(Syms, S.store(), "reach(X)");
  EXPECT_TRUE(Goal.hasValue());
  return S.solve(*Goal, nullptr);
}

TEST(IncompletenessTest, UntruncatedRunIsCleanBothRepresentations) {
  for (bool UseTrieTables : {true, false}) {
    SCOPED_TRACE(UseTrieTables ? "trie" : "string");
    SymbolTable Syms;
    Database DB(Syms);
    ASSERT_TRUE(DB.consult(ChainProgram).hasValue());
    Solver::Options Opts;
    Opts.UseTrieTables = UseTrieTables;
    Solver S(DB, Opts);
    EXPECT_EQ(countReach(Syms, S), 11u); // c0..c10.
    EXPECT_EQ(S.stats().DepthLimitHits, 0u);
    EXPECT_EQ(S.stats().IncompleteTables, 0u);
    for (const Subgoal *SG : S.subgoals())
      EXPECT_FALSE(SG->Incomplete);
  }
}

// The regression this PR fixes: before the poisoning existed, this setup
// dropped answers while every observable counter said the table was fine.
TEST(IncompletenessTest, DepthLimitHitPoisonsTheProducerTable) {
  for (bool UseTrieTables : {true, false}) {
    SCOPED_TRACE(UseTrieTables ? "trie" : "string");
    SymbolTable Syms;
    Database DB(Syms);
    ASSERT_TRUE(DB.consult(ChainProgram).hasValue());
    Solver::Options Opts;
    Opts.UseTrieTables = UseTrieTables;
    Opts.MaxDepth = 8;
    Solver S(DB, Opts);
    size_t N = countReach(Syms, S);
    EXPECT_LT(N, 11u); // Answers were dropped...
    EXPECT_GT(S.stats().DepthLimitHits, 0u);
    // ...and the truncation is no longer silent:
    EXPECT_GE(S.stats().IncompleteTables, 1u);
    const Subgoal *Reach = nullptr;
    for (const Subgoal *SG : S.subgoals())
      Reach = SG;
    ASSERT_NE(Reach, nullptr);
    EXPECT_TRUE(Reach->Complete);
    EXPECT_TRUE(Reach->Incomplete);
  }
}

TEST(IncompletenessTest, ConsumingATruncatedTableTaintsTheConsumer) {
  std::string Prog = ChainProgram;
  Prog += R"(
    :- table wrap/1.
    wrap(X) :- reach(X).
  )";
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(Prog).hasValue());
  Solver::Options Opts;
  Opts.MaxDepth = 8;
  Solver S(DB, Opts);
  auto Goal = Parser::parseTerm(Syms, S.store(), "wrap(X)");
  ASSERT_TRUE(Goal.hasValue());
  size_t N = S.solve(*Goal, nullptr);
  EXPECT_LT(N, 11u);
  // wrap/1 never hit the limit itself; it is incomplete because its only
  // source of answers is.
  for (const Subgoal *SG : S.subgoals())
    EXPECT_TRUE(SG->Incomplete);
  EXPECT_GE(S.stats().IncompleteTables, 2u);
}

TEST(IncompletenessTest, GroundnessRefusesTruncatedResults) {
  // Depth accumulates along a chained clause body only on the
  // tuple-at-a-time path (supplementary tabling solves pure bodies
  // goal-at-a-time from frontiers, each at depth 1), so pin that path and
  // let MaxDepth 1 prune the two-goal body mid-producer-run.
  const char *Prog = R"(
    p(X, Z) :- q(X, Y), q(Y, Z).
    q(a, b). q(b, c).
  )";
  GroundnessAnalyzer::Options Opts;
  Opts.Engine.MaxDepth = 1;
  Opts.Engine.SupplementaryTabling = false;
  {
    SymbolTable Syms;
    GroundnessAnalyzer A(Syms, Opts);
    auto R = A.analyze(Prog);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.getError().str().find("incomplete"), std::string::npos);
  }
  // Explicit warning mode: same truncation, but the caller asked for a
  // lower bound and gets it, flagged.
  Opts.AllowIncomplete = true;
  {
    SymbolTable Syms;
    GroundnessAnalyzer A(Syms, Opts);
    auto R = A.analyze(Prog);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
    EXPECT_TRUE(R->Incomplete);
    EXPECT_GE(R->Stats.IncompleteTables, 1u);
  }
  // Default limit: clean, exact, unflagged.
  {
    SymbolTable Syms;
    GroundnessAnalyzer A(Syms);
    auto R = A.analyze(Prog);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
    EXPECT_FALSE(R->Incomplete);
    EXPECT_EQ(R->Stats.IncompleteTables, 0u);
  }
}

TEST(IncompletenessTest, StrictnessRefusesTruncatedResults) {
  // "event" has transformed clauses whose evaluation provably exceeds
  // depth 1 (verified: hundreds of DepthLimitHits at MaxDepth 1); the
  // simplest FL programs never hit the limit at any setting.
  const CorpusProgram *Event = nullptr;
  for (const CorpusProgram &P : flBenchmarks())
    if (std::string_view(P.Name) == "event")
      Event = &P;
  ASSERT_NE(Event, nullptr);
  const char *Src = Event->Source;
  StrictnessAnalyzer::Options Opts;
  Opts.Engine.MaxDepth = 1;
  {
    StrictnessAnalyzer A(Opts);
    auto R = A.analyze(Src);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.getError().str().find("incomplete"), std::string::npos);
  }
  Opts.AllowIncomplete = true;
  {
    StrictnessAnalyzer A(Opts);
    auto R = A.analyze(Src);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
    EXPECT_TRUE(R->Incomplete);
  }
  {
    StrictnessAnalyzer A;
    auto R = A.analyze(Src);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
    EXPECT_FALSE(R->Incomplete);
  }
}

TEST(IncompletenessTest, DepthKProducerRunBudgetIsGated) {
  // Depth-k never calls the Solver — its truncation surface is the
  // producer-run budget of its own worklist interpreter.
  const std::string &Src = std::string(prologBenchmarks().front().Source);
  DepthKAnalyzer::Options Opts;
  Opts.MaxProducerRuns = 1;
  {
    SymbolTable Syms;
    DepthKAnalyzer A(Syms, Opts);
    auto R = A.analyze(Src);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.getError().str().find("incomplete"), std::string::npos);
  }
  Opts.AllowIncomplete = true;
  {
    SymbolTable Syms;
    DepthKAnalyzer A(Syms, Opts);
    auto R = A.analyze(Src);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
    EXPECT_TRUE(R->Incomplete);
  }
  {
    SymbolTable Syms;
    DepthKAnalyzer A(Syms);
    auto R = A.analyze(Src);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
    EXPECT_FALSE(R->Incomplete);
  }
}

} // namespace
