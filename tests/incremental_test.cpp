//===- incremental_test.cpp - Incremental table invalidation tests ------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The warm-session correctness contract: after any assert/retract
// sequence, query results are bit-identical to a cold solver on the final
// program, and the invalidation sweep drops exactly the dependent cone —
// independent tables stay warm. Covers the dependency index itself,
// Database retract/consult-atomicity/revision-clock semantics, the
// solver's tombstone-and-revive cycle under both table representations
// and under parallel eval workers, the SharedTableSpace retire/re-claim
// protocol (including a concurrent hammer for TSan), the session/protocol
// surface (consult, retract, tables_invalidated/tables_survived), and the
// reset_stats interaction.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "srv/Protocol.h"
#include "srv/Session.h"
#include "support/JsonValue.h"
#include "table/DependencyIndex.h"
#include "table/SharedTables.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace lpa;

namespace {

//===----------------------------------------------------------------------===//
// DependencyIndex
//===----------------------------------------------------------------------===//

TEST(DependencyIndexTest, EdgesDedupAndSelfEdgesDrop) {
  DependencyIndex DI;
  uint64_t P = DependencyIndex::packPred(1, 2);
  uint64_t Q = DependencyIndex::packPred(2, 2);
  DI.addEdge(P, Q);
  DI.addEdge(P, Q); // Duplicate.
  DI.addEdge(P, P); // Self-edge.
  EXPECT_EQ(DI.edgeCount(), 1u);
  EXPECT_EQ(DI.producerCount(), 1u);
}

TEST(DependencyIndexTest, DependentsAreTransitiveAndIncludeChanged) {
  // r -> q -> p (consumer -> producer): changing p invalidates all three;
  // changing r invalidates only r.
  DependencyIndex DI;
  uint64_t P = DependencyIndex::packPred(1, 1);
  uint64_t Q = DependencyIndex::packPred(2, 1);
  uint64_t R = DependencyIndex::packPred(3, 1);
  uint64_t S = DependencyIndex::packPred(4, 1); // Unrelated.
  DI.addEdge(Q, P);
  DI.addEdge(R, Q);
  DI.addEdge(S, S); // Dropped.

  std::vector<uint64_t> ChangedP{P};
  auto Cone = DI.dependentsOf(ChangedP);
  EXPECT_EQ(Cone.size(), 3u);
  EXPECT_TRUE(Cone.count(P) && Cone.count(Q) && Cone.count(R));
  EXPECT_FALSE(Cone.count(S));

  std::vector<uint64_t> ChangedR{R};
  auto Tip = DI.dependentsOf(ChangedR);
  EXPECT_EQ(Tip.size(), 1u);
  EXPECT_TRUE(Tip.count(R));
}

TEST(DependencyIndexTest, DropConsumersForgetsInvalidatedOutEdges) {
  DependencyIndex DI;
  uint64_t P = DependencyIndex::packPred(1, 1);
  uint64_t Q = DependencyIndex::packPred(2, 1);
  uint64_t R = DependencyIndex::packPred(3, 1);
  DI.addEdge(Q, P);
  DI.addEdge(R, P);
  EXPECT_EQ(DI.edgeCount(), 2u);

  // Q's table is being re-derived: its old dependency on P is forgotten;
  // R's edge survives.
  std::unordered_set<uint64_t> Invalidated{Q};
  DI.dropConsumers(Invalidated);
  EXPECT_EQ(DI.edgeCount(), 1u);
  std::vector<uint64_t> ChangedP{P};
  auto Cone = DI.dependentsOf(ChangedP);
  EXPECT_TRUE(Cone.count(R));
  EXPECT_FALSE(Cone.count(Q));
}

TEST(DependencyIndexTest, MergeUnionsWorkerEdges) {
  DependencyIndex Lead, Worker;
  uint64_t P = DependencyIndex::packPred(1, 1);
  uint64_t Q = DependencyIndex::packPred(2, 1);
  uint64_t R = DependencyIndex::packPred(3, 1);
  Lead.addEdge(Q, P);
  Worker.addEdge(Q, P); // Shared edge: must not double-count.
  Worker.addEdge(R, Q);
  Lead.merge(Worker);
  EXPECT_EQ(Lead.edgeCount(), 2u);
  std::vector<uint64_t> ChangedP{P};
  EXPECT_EQ(Lead.dependentsOf(ChangedP).size(), 3u);
}

//===----------------------------------------------------------------------===//
// Database: retract, consult atomicity, revision clock
//===----------------------------------------------------------------------===//

const char *PathProgram = ":- table path/2.\n"
                          "path(X, Y) :- edge(X, Y).\n"
                          "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
                          "edge(a, b). edge(b, c). edge(c, d).\n";

TEST(RetractTest, FactsAndRulesRetractByVariant) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  ASSERT_EQ(DB.numClauses(), 5u);

  // Facts retract literally.
  auto R1 = DB.retract("edge(b, c).");
  ASSERT_TRUE(R1.hasValue());
  EXPECT_EQ(*R1, 1u);
  EXPECT_EQ(DB.numClauses(), 4u);

  // A second retract of the same clause finds nothing.
  auto R2 = DB.retract("edge(b, c).");
  ASSERT_TRUE(R2.hasValue());
  EXPECT_EQ(*R2, 0u);

  // Rules retract up to variable renaming, with head/body sharing
  // respected: A/B here name the same sharing pattern as X/Y there.
  auto R3 = DB.retract("path(A, B) :- edge(A, B).");
  ASSERT_TRUE(R3.hasValue());
  EXPECT_EQ(*R3, 1u);
  EXPECT_EQ(DB.numClauses(), 3u);

  // A rule with *different* sharing is not a variant and must not match.
  auto R4 = DB.retract("path(A, A) :- edge(A, Z), path(Z, A).");
  ASSERT_TRUE(R4.hasValue());
  EXPECT_EQ(*R4, 0u);

  // Unknown predicate: zero, not an error.
  auto R5 = DB.retract("ghost(a).");
  ASSERT_TRUE(R5.hasValue());
  EXPECT_EQ(*R5, 0u);
}

TEST(RetractTest, MalformedRetractsAreErrors) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  EXPECT_FALSE(DB.retract(":- table edge/2.").hasValue());
  EXPECT_FALSE(DB.retract("edge(a, b). edge(b, c).").hasValue());
  EXPECT_FALSE(DB.retract("   ").hasValue());
  EXPECT_EQ(DB.numClauses(), 5u); // Untouched by any of the failures.
}

TEST(RetractTest, RetractAllEmptiesThePredicateButKeepsItDefined) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  PredKey Edge{Syms.intern("edge"), 2};
  EXPECT_EQ(DB.retractAll(Edge), 3u);
  EXPECT_EQ(DB.retractAll(Edge), 0u);
  // Still defined: calls fail rather than count as undefined misses.
  ASSERT_NE(DB.lookup(Edge), nullptr);
  EXPECT_TRUE(DB.lookup(Edge)->Clauses.empty());
}

TEST(ConsultAtomicityTest, FailedConsultLeavesTheDatabaseUntouched) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  size_t Clauses = DB.numClauses();
  uint64_t Rev = DB.globalRevision();

  // Parse error after two loadable clauses: nothing may load.
  EXPECT_FALSE(DB.consult("edge(d, e). edge(e, f). edge(f, ").hasValue());
  EXPECT_EQ(DB.numClauses(), Clauses);
  EXPECT_EQ(DB.globalRevision(), Rev);

  // Shape error (non-callable head) after a loadable clause: same.
  EXPECT_FALSE(DB.consult("edge(d, e). 42 :- edge(a, b).").hasValue());
  EXPECT_EQ(DB.numClauses(), Clauses);
  EXPECT_EQ(DB.globalRevision(), Rev);

  // Bad table directive after a loadable clause: same.
  EXPECT_FALSE(DB.consult("edge(d, e). :- table frob(nope).").hasValue());
  EXPECT_EQ(DB.numClauses(), Clauses);
  EXPECT_EQ(DB.globalRevision(), Rev);

  // And the database still works.
  EXPECT_TRUE(DB.consult("edge(d, e).").hasValue());
  EXPECT_EQ(DB.numClauses(), Clauses + 1);
  EXPECT_GT(DB.globalRevision(), Rev);
}

TEST(RevisionClockTest, MutationsStampPredicates) {
  SymbolTable Syms;
  Database DB(Syms);
  uint64_t Rev0 = DB.globalRevision();
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  auto Changed = DB.predsChangedSince(Rev0);
  EXPECT_EQ(Changed.size(), 2u); // path/2 and edge/2.

  uint64_t Rev1 = DB.globalRevision();
  ASSERT_TRUE(DB.retract("edge(a, b).").hasValue());
  Changed = DB.predsChangedSince(Rev1);
  ASSERT_EQ(Changed.size(), 1u);
  EXPECT_EQ(Changed[0].Sym, Syms.intern("edge"));

  // Tabling declarations do not bump the clock (strategy, not meaning).
  uint64_t Rev2 = DB.globalRevision();
  ASSERT_TRUE(DB.consult(":- table edge/2.").hasValue());
  EXPECT_EQ(DB.globalRevision(), Rev2);
}

//===----------------------------------------------------------------------===//
// Warm-session staleness: the bug this suite exists for
//===----------------------------------------------------------------------===//

// A warm session must reflect consulted clauses in the *next* query, not
// serve answers derived under the old program.
TEST(WarmSessionTest, ConsultIntoWarmSessionInvalidatesDependentTables) {
  AnalysisSession Session;
  ASSERT_TRUE(Session.consult(PathProgram).hasValue());

  auto Q1 = Session.runQuery("path(a, X)");
  ASSERT_TRUE(Q1.hasValue());
  EXPECT_EQ(Q1->Total, 3u);

  // Extend the graph under the completed tables.
  auto C = Session.consult("edge(d, e).");
  ASSERT_TRUE(C.hasValue());
  EXPECT_GT(C->TablesInvalidated, 0u);

  auto Q2 = Session.runQuery("path(a, X)");
  ASSERT_TRUE(Q2.hasValue());
  EXPECT_EQ(Q2->Total, 4u) << "warm session served stale answers";
}

TEST(WarmSessionTest, RetractIntoWarmSessionShrinksAnswers) {
  AnalysisSession Session;
  ASSERT_TRUE(Session.consult(PathProgram).hasValue());
  ASSERT_TRUE(Session.runQuery("path(a, X)").hasValue());

  auto R = Session.retract("edge(c, d).");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Loaded, 1u);
  EXPECT_GT(R->TablesInvalidated, 0u);

  auto Q = Session.runQuery("path(a, X)");
  ASSERT_TRUE(Q.hasValue());
  EXPECT_EQ(Q->Total, 2u);

  // Retracting something that matches nothing sweeps nothing.
  auto R0 = Session.retract("edge(c, d).");
  ASSERT_TRUE(R0.hasValue());
  EXPECT_EQ(R0->Loaded, 0u);
  EXPECT_EQ(R0->TablesInvalidated, 0u);
}

// Independent predicate families must keep their tables across a consult
// that only touches the other family.
TEST(WarmSessionTest, IndependentTablesSurviveTheSweep) {
  AnalysisSession Session;
  std::string Two = std::string(PathProgram) +
                    ":- table reach/2.\n"
                    "reach(X, Y) :- link(X, Y).\n"
                    "reach(X, Y) :- link(X, Z), reach(Z, Y).\n"
                    "link(u, v). link(v, w).\n";
  ASSERT_TRUE(Session.consult(Two).hasValue());
  ASSERT_TRUE(Session.runQuery("path(a, X)").hasValue());
  ASSERT_TRUE(Session.runQuery("reach(u, X)").hasValue());

  auto C = Session.consult("edge(d, e).");
  ASSERT_TRUE(C.hasValue());
  EXPECT_GT(C->TablesInvalidated, 0u);
  EXPECT_GT(C->TablesSurvived, 0u) << "sweep dropped independent tables";

  // reach's table answers warm (no cold misses), with the same answers.
  auto Q = Session.runQuery("reach(u, X)");
  ASSERT_TRUE(Q.hasValue());
  EXPECT_EQ(Q->Total, 2u);
  EXPECT_GT(Q->WarmHits, 0u);
  EXPECT_EQ(Q->ColdMisses, 0u);
}

// Asserting a predicate that was *undefined* when a table consumed it
// must invalidate that table: the dependency predates the definition.
TEST(WarmSessionTest, AssertingAPreviouslyUndefinedPredicateInvalidates) {
  AnalysisSession Session;
  ASSERT_TRUE(Session
                  .consult(":- table p/1.\n"
                           "p(X) :- base(X).\n"
                           "p(X) :- extra(X).\n"
                           "base(1).\n")
                  .hasValue());
  auto Q1 = Session.runQuery("p(X)");
  ASSERT_TRUE(Q1.hasValue());
  EXPECT_EQ(Q1->Total, 1u); // extra/1 is undefined: contributes nothing.

  auto C = Session.consult("extra(2).");
  ASSERT_TRUE(C.hasValue());
  EXPECT_GT(C->TablesInvalidated, 0u);

  auto Q2 = Session.runQuery("p(X)");
  ASSERT_TRUE(Q2.hasValue());
  EXPECT_EQ(Q2->Total, 2u);
}

//===----------------------------------------------------------------------===//
// Warm-vs-cold bit identity under both representations and worker counts
//===----------------------------------------------------------------------===//

/// Sorted rendered solutions of \p GoalText — the canonical fingerprint
/// order-insensitive under SLG scheduling.
std::vector<std::string> answersOf(AnalysisSession &S, const char *GoalText) {
  auto Q = S.runQuery(GoalText, /*MaxSolutions=*/100000);
  EXPECT_TRUE(Q.hasValue());
  std::vector<std::string> Out = Q ? Q->Solutions : std::vector<std::string>();
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(WarmColdIdentityTest, MutationSequenceMatchesColdSolverOnFinalProgram) {
  const char *Goals[] = {"path(a, X)", "path(X, Y)", "reach(u, X)"};
  for (bool UseTrieTables : {true, false}) {
    for (size_t Workers : {size_t(0), size_t(2), size_t(4)}) {
      SCOPED_TRACE((UseTrieTables ? std::string("trie") : std::string("str")) +
                   " workers=" + std::to_string(Workers));
      bool PrevTrie = Solver::setDefaultUseTrieTables(UseTrieTables);

      AnalysisSession::Options O;
      O.EvalWorkers = Workers;
      AnalysisSession Warm(O);
      std::string Base = std::string(PathProgram) +
                         ":- table reach/2.\n"
                         "reach(X, Y) :- link(X, Y).\n"
                         "reach(X, Y) :- link(X, Z), reach(Z, Y).\n"
                         "link(u, v). link(v, w).\n";
      ASSERT_TRUE(Warm.consult(Base).hasValue());
      for (const char *G : Goals)
        answersOf(Warm, G); // Complete the tables under program v1.

      // The mutation sequence: extend edge, retract an edge, extend link.
      ASSERT_TRUE(Warm.consult("edge(d, e). edge(e, f).").hasValue());
      for (const char *G : Goals)
        answersOf(Warm, G); // Re-derive under v2 (and re-warm).
      ASSERT_TRUE(Warm.retract("edge(a, b).").hasValue());
      ASSERT_TRUE(Warm.consult("link(w, u).").hasValue());

      // Cold solver on the final program.
      AnalysisSession::Options CO;
      CO.EvalWorkers = Workers;
      AnalysisSession Cold(CO);
      std::string Final = std::string(":- table path/2.\n"
                                      "path(X, Y) :- edge(X, Y).\n"
                                      "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
                                      "edge(b, c). edge(c, d).\n") +
                          "edge(d, e). edge(e, f).\n"
                          ":- table reach/2.\n"
                          "reach(X, Y) :- link(X, Y).\n"
                          "reach(X, Y) :- link(X, Z), reach(Z, Y).\n"
                          "link(u, v). link(v, w). link(w, u).\n";
      ASSERT_TRUE(Cold.consult(Final).hasValue());

      for (const char *G : Goals)
        EXPECT_EQ(answersOf(Warm, G), answersOf(Cold, G))
            << "warm/cold divergence on " << G;

      Solver::setDefaultUseTrieTables(PrevTrie);
    }
  }
}

// The parallel-prime path: workers publish tables into the shared space,
// the lead imports them; a retract must retire the shared copies too, and
// the re-primed results must match a cold run on the final program.
TEST(WarmColdIdentityTest, SharedTableSpaceSurvivesRetractAndReprime) {
  for (size_t Workers : {size_t(2), size_t(4)}) {
    SCOPED_TRACE("workers=" + std::to_string(Workers));
    SymbolTable Syms;
    Database DB(Syms);
    std::string Program;
    constexpr size_t Chains = 4;
    for (size_t C = 0; C < Chains; ++C) {
      std::string P = "p" + std::to_string(C);
      std::string E = "e" + std::to_string(C);
      Program += ":- table " + P + "/2.\n";
      Program += P + "(X, Y) :- " + E + "(X, Y).\n";
      Program += P + "(X, Y) :- " + E + "(X, Z), " + P + "(Z, Y).\n";
      for (int I = 0; I < 4; ++I)
        Program += E + "(n" + std::to_string(I) + ", n" +
                   std::to_string(I + 1) + ").\n";
    }
    ASSERT_TRUE(DB.consult(Program).hasValue());

    Solver::Options O;
    O.EvalWorkers = Workers;
    Solver Warm(DB, O);

    std::vector<TermRef> Calls;
    for (size_t C = 0; C < Chains; ++C) {
      auto Call = Parser::parseTerm(Syms, Warm.store(),
                                    "p" + std::to_string(C) + "(X, Y)");
      ASSERT_TRUE(Call.hasValue());
      Calls.push_back(*Call);
    }
    Warm.primeTables(Calls);

    // Retract one chain's edge; only that chain's cone may drop.
    ASSERT_TRUE(DB.retract("e1(n3, n4).").hasValue());
    auto Changed = DB.predsChangedSince(0);
    std::vector<PredKey> Keys;
    for (PredKey K : Changed)
      if (K.Sym == Syms.intern("e1"))
        Keys.push_back(K);
    ASSERT_EQ(Keys.size(), 1u);
    Solver::InvalidationResult R = Warm.invalidateDependents(Keys);
    EXPECT_GT(R.TablesInvalidated, 0u);
    EXPECT_GT(R.TablesSurvived, 0u);

    // Re-prime and collect; compare against a cold solver.
    Warm.primeTables(Calls);
    Database ColdDB(Syms);
    std::string Final = Program;
    ASSERT_TRUE(ColdDB.consult(Final).hasValue());
    ASSERT_TRUE(ColdDB.retract("e1(n3, n4).").hasValue());
    Solver Cold(ColdDB, O);

    for (size_t C = 0; C < Chains; ++C) {
      std::string GoalText = "p" + std::to_string(C) + "(X, Y)";
      std::vector<std::string> WarmA, ColdA;
      auto Collect = [&](Solver &S, std::vector<std::string> &Out) {
        auto Goal = Parser::parseTerm(Syms, S.store(), GoalText);
        ASSERT_TRUE(Goal.hasValue());
        S.solve(*Goal, [&]() {
          Out.push_back(TermWriter::toString(Syms, S.storeConst(), *Goal));
          return false;
        });
        std::sort(Out.begin(), Out.end());
      };
      Collect(Warm, WarmA);
      Collect(Cold, ColdA);
      EXPECT_EQ(WarmA, ColdA) << "divergence on " << GoalText;
    }
  }
}

//===----------------------------------------------------------------------===//
// SharedTableSpace retirement protocol
//===----------------------------------------------------------------------===//

TEST(SharedSpaceRetireTest, RetireHidesReclaimRepublishes) {
  SharedTableSpace Space(4);
  SymbolTable Syms;
  TermStore Store;
  auto Call = Parser::parseTerm(Syms, Store, "p(X)");
  ASSERT_TRUE(Call.hasValue());
  SymbolId PSym = Syms.intern("p");

  auto O1 = Space.claim(Store, *Call, PSym, 1, /*Worker=*/0);
  ASSERT_EQ(O1.H, SharedTableSpace::Hit::Claimed);
  auto T = std::make_unique<SharedTableSpace::PublishedTable>();
  T->NumAnswers = 7;
  Space.publish(*O1.E, std::move(T));

  auto O2 = Space.claim(Store, *Call, PSym, 1, 1);
  ASSERT_EQ(O2.H, SharedTableSpace::Hit::Published);
  const SharedTableSpace::PublishedTable *Old = Space.published(*O2.E);
  ASSERT_NE(Old, nullptr);
  EXPECT_EQ(Old->NumAnswers, 7u);

  uint64_t Epoch0 = Space.epoch();
  EXPECT_EQ(Space.invalidatePred(PSym, 1), 1u);
  EXPECT_GT(Space.epoch(), Epoch0);
  EXPECT_EQ(Space.invalidatePred(PSym, 1), 0u); // Already retired.
  EXPECT_EQ(Space.epoch(), Epoch0 + 1);         // No second bump.

  // Retired: hidden from published()/publishedTables(), and the *old
  // pointer stays valid* (deferred reclamation).
  EXPECT_EQ(Space.published(*O2.E), nullptr);
  EXPECT_TRUE(Space.publishedTables().empty());
  EXPECT_EQ(Old->NumAnswers, 7u);

  // The next claim re-owns the variant and can republish.
  auto O3 = Space.claim(Store, *Call, PSym, 1, 2);
  ASSERT_EQ(O3.H, SharedTableSpace::Hit::Claimed);
  EXPECT_EQ(O3.E, O2.E);
  auto T2 = std::make_unique<SharedTableSpace::PublishedTable>();
  T2->NumAnswers = 9;
  Space.publish(*O3.E, std::move(T2));
  auto O4 = Space.claim(Store, *Call, PSym, 1, 3);
  ASSERT_EQ(O4.H, SharedTableSpace::Hit::Published);
  EXPECT_EQ(Space.published(*O4.E)->NumAnswers, 9u);
  EXPECT_EQ(Old->NumAnswers, 7u); // Still alive, still the old data.

  EXPECT_EQ(Space.stats().Retired, 1u);
}

TEST(SharedSpaceRetireTest, OnlyTheNamedPredicateRetires) {
  SharedTableSpace Space(4);
  SymbolTable Syms;
  TermStore Store;
  SymbolId P = Syms.intern("p"), Q = Syms.intern("q");
  for (const char *G : {"p(X)", "q(X)"}) {
    auto Call = Parser::parseTerm(Syms, Store, G);
    ASSERT_TRUE(Call.hasValue());
    SymbolId Sym = G[0] == 'p' ? P : Q;
    auto O = Space.claim(Store, *Call, Sym, 1, 0);
    ASSERT_EQ(O.H, SharedTableSpace::Hit::Claimed);
    Space.publish(*O.E, std::make_unique<SharedTableSpace::PublishedTable>());
  }
  EXPECT_EQ(Space.publishedTables().size(), 2u);
  EXPECT_EQ(Space.invalidatePred(P, 1), 1u);
  EXPECT_EQ(Space.publishedTables().size(), 1u);
}

// TSan interleaving fodder: worker threads claim/publish/read while one
// thread retracts (retires) concurrently. The invariants: no torn tables
// (every published() pointer dereferences to a fully-constructed table
// whose NumAnswers matches its payload), retirement is monotone per
// epoch, and the space survives to destruction with all memory intact.
TEST(SharedSpaceRetireTest, ConcurrentRetireHammer) {
  constexpr size_t NumWorkers = 4;
  constexpr size_t NumPreds = 8;
  constexpr int Rounds = 400;

  SharedTableSpace Space(4);
  SymbolTable Syms;
  std::vector<SymbolId> PredSyms;
  std::vector<TermStore> Stores(NumWorkers);
  // Pre-intern so worker threads never mutate the symbol table.
  for (size_t P = 0; P < NumPreds; ++P)
    PredSyms.push_back(Syms.intern("hp" + std::to_string(P)));

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> TornTables{0};

  auto Worker = [&](size_t W) {
    TermStore &Store = Stores[W];
    std::vector<TermRef> Calls;
    for (size_t P = 0; P < NumPreds; ++P) {
      auto Call = Parser::parseTerm(
          Syms, Store, "hp" + std::to_string(P) + "(X)");
      ASSERT_TRUE(Call.hasValue());
      Calls.push_back(*Call);
    }
    for (int R = 0; R < Rounds; ++R) {
      size_t P = (W + R) % NumPreds;
      auto O = Space.claim(Store, Calls[P], PredSyms[P], 1, uint32_t(W));
      if (O.H == SharedTableSpace::Hit::Claimed) {
        auto T = std::make_unique<SharedTableSpace::PublishedTable>();
        T->Sym = PredSyms[P];
        T->Arity = 1;
        T->NumAnswers = 3;
        T->Answers = {TermRef{}, TermRef{}, TermRef{}};
        Space.publish(*O.E, std::move(T));
      } else if (O.H == SharedTableSpace::Hit::Published) {
        const SharedTableSpace::PublishedTable *T = Space.published(*O.E);
        // A stale Published observation may race a retire; the pointer
        // must still be a whole table either way.
        if (T && (T->NumAnswers != 3 || T->Answers.size() != 3))
          TornTables.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::thread Retirer([&]() {
    while (!Stop.load(std::memory_order_relaxed))
      for (size_t P = 0; P < NumPreds; ++P)
        Space.invalidatePred(PredSyms[P], 1);
  });

  std::vector<std::thread> Threads;
  for (size_t W = 0; W < NumWorkers; ++W)
    Threads.emplace_back(Worker, W);
  for (auto &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_relaxed);
  Retirer.join();

  EXPECT_EQ(TornTables.load(), 0u);
  EXPECT_GT(Space.stats().Retired, 0u);
  EXPECT_GT(Space.epoch(), 0u);
}

//===----------------------------------------------------------------------===//
// reset_stats interaction
//===----------------------------------------------------------------------===//

// The contract (DESIGN.md §15): counters are per-window and reset;
// *state* — warm tables, tombstones, dependency edges — survives.
TEST(ResetStatsTest, InvalidationCountersResetButStateSurvives) {
  AnalysisSession Session;
  ASSERT_TRUE(Session.consult(PathProgram).hasValue());
  ASSERT_TRUE(Session.runQuery("path(a, X)").hasValue());
  auto C = Session.consult("edge(d, e).");
  ASSERT_TRUE(C.hasValue());
  ASSERT_GT(C->TablesInvalidated, 0u);

  // Before reset: both engine and service counters carry the sweep.
  EXPECT_GT(Session.solver().stats().TablesInvalidated, 0u);
  EXPECT_GT(Session.serviceStats().tablesInvalidated(), 0u);
  EXPECT_EQ(Session.serviceStats().invalidations(), 1u);

  Session.resetStats();

  // Path 1: counters are per-window — all zero after the reset.
  EXPECT_EQ(Session.solver().stats().TablesInvalidated, 0u);
  EXPECT_EQ(Session.solver().stats().TablesSurvived, 0u);
  EXPECT_EQ(Session.solver().stats().TablesRevived, 0u);
  EXPECT_EQ(Session.serviceStats().tablesInvalidated(), 0u);
  EXPECT_EQ(Session.serviceStats().tablesSurvived(), 0u);
  EXPECT_EQ(Session.serviceStats().invalidations(), 0u);

  // Path 2: state survived. The tombstoned path tables revive on the
  // next query (counted in the fresh window), with correct answers...
  auto Q = Session.runQuery("path(a, X)");
  ASSERT_TRUE(Q.hasValue());
  EXPECT_EQ(Q->Total, 4u);
  EXPECT_GT(Session.solver().stats().TablesRevived, 0u);

  // ...and the dependency index kept its edges: a fresh mutation still
  // sweeps the cone, counted from zero in the new window.
  auto C2 = Session.consult("edge(e, f).");
  ASSERT_TRUE(C2.hasValue());
  EXPECT_GT(C2->TablesInvalidated, 0u);
  EXPECT_EQ(Session.serviceStats().invalidations(), 1u);
}

//===----------------------------------------------------------------------===//
// Protocol surface
//===----------------------------------------------------------------------===//

JsonValue respond(AnalysisSession &Session, const std::string &Line) {
  bool Quit = false;
  std::string Resp = handleRequestLine(Session, Line, Quit);
  auto V = JsonValue::parse(Resp);
  EXPECT_TRUE(V.hasValue()) << "unparsable response: " << Resp;
  return V.hasValue() ? *V : JsonValue();
}

TEST(ProtocolIncrementalTest, AssertQueryRetractQueryRoundTrip) {
  AnalysisSession Session;
  JsonValue C = respond(
      Session,
      R"j({"op":"consult","program":":- table path/2. path(X,Y) :- edge(X,Y). path(X,Y) :- edge(X,Z), path(Z,Y). edge(a,b). edge(b,c)."})j");
  EXPECT_TRUE(C.find("ok")->asBool());
  EXPECT_DOUBLE_EQ(C.numberOr("tables_invalidated", -1), 0.0);

  JsonValue Q1 = respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  EXPECT_DOUBLE_EQ(Q1.numberOr("total", 0), 2.0);

  // Assert into the warm session; the cone drops and the next query sees
  // the new fact.
  JsonValue C2 =
      respond(Session, R"j({"op":"consult","program":"edge(c,d)."})j");
  EXPECT_TRUE(C2.find("ok")->asBool());
  EXPECT_GT(C2.numberOr("tables_invalidated", 0), 0.0);
  JsonValue Q2 = respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  EXPECT_DOUBLE_EQ(Q2.numberOr("total", 0), 3.0);

  // Retract and re-query.
  JsonValue R =
      respond(Session, R"j({"op":"retract","clause":"edge(a,b)."})j");
  EXPECT_TRUE(R.find("ok")->asBool());
  EXPECT_DOUBLE_EQ(R.numberOr("retracted", 0), 1.0);
  EXPECT_GT(R.numberOr("tables_invalidated", 0), 0.0);
  JsonValue Q3 = respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  EXPECT_DOUBLE_EQ(Q3.numberOr("total", 0), 0.0);

  // Malformed retracts are error responses, not disconnects.
  JsonValue Bad = respond(Session, R"j({"op":"retract"})j");
  EXPECT_FALSE(Bad.find("ok")->asBool());
  JsonValue Bad2 =
      respond(Session, R"j({"op":"retract","clause":":- table p/1."})j");
  EXPECT_FALSE(Bad2.find("ok")->asBool());

  // The stats snapshot carries the cumulative invalidation telemetry.
  JsonValue St = respond(Session, R"j({"op":"stats"})j");
  const JsonValue *Stats = St.find("stats");
  ASSERT_TRUE(Stats && Stats->isObject());
  EXPECT_GT(Stats->numberOr("tables_invalidated", 0), 0.0);
  EXPECT_DOUBLE_EQ(Stats->numberOr("invalidations", 0), 2.0);
}

} // namespace
