//===- justify_test.cpp - Answer provenance & forest export tests -------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The justification suite (ctest -L just): answer provenance recording
// across both table representations and both clause-evaluation modes,
// proof-tree reconstruction (well-foundedness, cycle guard, bounded
// elision), the null-cost disabled path, analyzer explain() entry points,
// SLG forest export (DOT + JSON), and justification validity under the
// parallel fleet.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "obs/Forest.h"
#include "obs/Provenance.h"
#include "par/CorpusScheduler.h"
#include "prop/Groundness.h"
#include "reader/Parser.h"
#include "strictness/Strictness.h"
#include "depthk/DepthK.h"

#include <gtest/gtest.h>

#include <set>

using namespace lpa;

namespace {

/// Brackets/braces/parens stay balanced — the well-formedness check the
/// rendered proof trees and DOT output must satisfy whenever term labels
/// do (they always do here: plain atoms and integers).
bool bracketBalanced(const std::string &S) {
  int Paren = 0, Square = 0, Curly = 0;
  for (char C : S) {
    switch (C) {
    case '(': ++Paren; break;
    case ')': --Paren; break;
    case '[': ++Square; break;
    case ']': --Square; break;
    case '{': ++Curly; break;
    case '}': --Curly; break;
    default: break;
    }
    if (Paren < 0 || Square < 0 || Curly < 0)
      return false;
  }
  return Paren == 0 && Square == 0 && Curly == 0;
}

/// Walks a proof tree; fails the test if any node is a cycle back-edge.
void expectAcyclic(const ProofNode &N) {
  EXPECT_FALSE(N.Cycle);
  for (const ProofNode &P : N.Premises)
    expectAcyclic(P);
}

size_t countNodes(const ProofNode &N) {
  size_t Total = 1;
  for (const ProofNode &P : N.Premises)
    Total += countNodes(P);
  return Total;
}

const char *PathProg = ":- table path/2.\n"
                       "path(X, Y) :- edge(X, Y).\n"
                       "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
                       "edge(a, b). edge(b, c). edge(c, a).\n";

//===----------------------------------------------------------------------===//
// ProvenanceArena unit behaviour
//===----------------------------------------------------------------------===//

TEST(ProvenanceArena, RecordFindOverwriteDrop) {
  ProvenanceArena A;
  EXPECT_FALSE(A.find(0, 0).has_value());

  ProvPremise P[] = {{2, 0}, {3, 1}};
  A.record(0, 0, 5, P);
  auto J = A.find(0, 0);
  ASSERT_TRUE(J.has_value());
  EXPECT_EQ(J->ClauseIdx, 5u);
  ASSERT_EQ(J->Premises.size(), 2u);
  EXPECT_EQ(J->Premises[0], (ProvPremise{2, 0}));
  EXPECT_EQ(J->Premises[1], (ProvPremise{3, 1}));
  EXPECT_EQ(A.justificationCount(), 1u);

  // Overwrite in place (the aggregation-join path) keeps the count at 1.
  A.record(0, 0, ProvFoldedClause, {});
  J = A.find(0, 0);
  ASSERT_TRUE(J.has_value());
  EXPECT_EQ(J->ClauseIdx, ProvFoldedClause);
  EXPECT_TRUE(J->Premises.empty());
  EXPECT_EQ(A.justificationCount(), 1u);

  A.record(0, 3, 1, {}); // Sparse slot: answers 1-2 stay unjustified.
  EXPECT_FALSE(A.find(0, 1).has_value());
  EXPECT_FALSE(A.find(0, 2).has_value());
  EXPECT_TRUE(A.find(0, 3).has_value());
  EXPECT_EQ(A.justificationCount(), 2u);

  A.dropSubgoal(0);
  EXPECT_FALSE(A.find(0, 0).has_value());
  EXPECT_FALSE(A.find(0, 3).has_value());
  EXPECT_EQ(A.justificationCount(), 0u);
}

TEST(ProvenanceArena, CheckCountsDangling) {
  ProvenanceArena A;
  ProvPremise Ok{0, 0}, Bad{7, 9};
  ProvPremise Both[] = {Ok, Bad};
  A.record(1, 0, 0, std::span<const ProvPremise>(&Ok, 1));
  A.record(1, 1, 1, Both);
  auto CS = A.check([](ProvPremise P) { return P.SubgoalIdx == 0; });
  EXPECT_EQ(CS.Justified, 2u);
  EXPECT_EQ(CS.Premises, 3u);
  EXPECT_EQ(CS.Dangling, 1u);
}

TEST(ProofTree, DepthAndWidthElisionAreExplicit) {
  // A linear chain of justifications: answer I of subgoal 0 consumes
  // answer I-1.
  ProvenanceArena A;
  A.record(0, 0, 0, {});
  for (uint32_t I = 1; I < 20; ++I) {
    ProvPremise P{0, I - 1};
    A.record(0, I, 1, std::span<const ProvPremise>(&P, 1));
  }
  ProofBuildOptions O;
  O.MaxDepth = 4;
  ProofNode Root = buildProofTree(A, 0, 19, O);
  EXPECT_LE(countNodes(Root), 5u);
  std::string Text =
      renderProofTree(Root, [](const ProofNode &N) {
        return "a" + std::to_string(N.AnswerIdx);
      });
  EXPECT_NE(Text.find("elided"), std::string::npos);
  EXPECT_TRUE(bracketBalanced(Text));

  // Width elision: one answer with many premises.
  ProvenanceArena B;
  B.record(1, 0, 0, {});
  std::vector<ProvPremise> Many;
  for (uint32_t I = 0; I < 30; ++I)
    Many.push_back({1, 0});
  B.record(0, 0, 0, Many);
  ProofBuildOptions WO;
  WO.MaxPremises = 3;
  ProofNode W = buildProofTree(B, 0, 0, WO);
  EXPECT_EQ(W.Premises.size(), 3u);
  EXPECT_EQ(W.ElidedPremises, 27u);
  std::string WText = renderProofTree(W, [](const ProofNode &) {
    return std::string("x");
  });
  EXPECT_NE(WText.find("27 more premises elided"), std::string::npos);
}

TEST(ProofTree, SelfReferenceRendersAsCycleBackEdge) {
  // An aggregation join can overwrite answer 0 with a justification that
  // consumes answer 0 itself; the walker must mark, not loop.
  ProvenanceArena A;
  ProvPremise Self{0, 0};
  A.record(0, 0, ProvFoldedClause, std::span<const ProvPremise>(&Self, 1));
  ProofNode Root = buildProofTree(A, 0, 0);
  ASSERT_EQ(Root.Premises.size(), 1u);
  EXPECT_TRUE(Root.Premises[0].Cycle);
  std::string Text = renderProofTree(Root, [](const ProofNode &) {
    return std::string("n");
  });
  EXPECT_NE(Text.find("cycle back-edge"), std::string::npos);
  EXPECT_NE(Text.find("folded"), std::string::npos);
  EXPECT_TRUE(bracketBalanced(Text));
}

//===----------------------------------------------------------------------===//
// Engine recording: both table representations, both evaluation modes
//===----------------------------------------------------------------------===//

class JustifyModes
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(JustifyModes, EveryAnswerJustifiedAndWellFounded) {
  auto [Trie, Supp] = GetParam();
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProg).hasValue());
  Solver::Options O;
  O.UseTrieTables = Trie;
  O.SupplementaryTabling = Supp;
  O.RecordProvenance = true;
  Solver Engine(DB, O);

  auto G = Parser::parseTerm(Syms, Engine.store(), "path(a, X)");
  ASSERT_TRUE(G.hasValue());
  EXPECT_EQ(Engine.solve(*G, nullptr), 3u);

  // Every unique answer across every subgoal carries a justification, and
  // every premise resolves to a live tabled answer.
  ASSERT_NE(Engine.provenance(), nullptr);
  auto CS = Engine.checkProvenance();
  EXPECT_EQ(CS.Justified, Engine.stats().AnswersRecorded);
  EXPECT_GT(CS.Premises, 0u);
  EXPECT_EQ(CS.Dangling, 0u);

  // Plain tabling records premises strictly before their consumers, so
  // every reconstructed proof tree is acyclic and bracket-balanced.
  for (const Subgoal *SG : Engine.subgoals()) {
    for (size_t I = 0, E = Engine.answerCount(*SG); I < E; ++I) {
      auto Proof = Engine.justifyAnswer(*SG, I);
      ASSERT_TRUE(Proof.has_value());
      expectAcyclic(*Proof);
      std::string Text = Engine.renderProof(*Proof);
      EXPECT_FALSE(Text.empty());
      EXPECT_TRUE(bracketBalanced(Text)) << Text;
      // A well-founded leaf exists: some node derived by a fact clause
      // with no premises.
      EXPECT_EQ(Text.find("no recorded justification"), std::string::npos)
          << Text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TableRepsAndModes, JustifyModes,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Justify, DisabledPathRecordsNothing) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProg).hasValue());
  Solver Engine(DB); // RecordProvenance defaults off.
  auto G = Parser::parseTerm(Syms, Engine.store(), "path(a, X)");
  EXPECT_EQ(Engine.solve(*G, nullptr), 3u);
  EXPECT_EQ(Engine.provenance(), nullptr);
  const Subgoal *SG = Engine.findSubgoal(*G);
  ASSERT_NE(SG, nullptr);
  EXPECT_FALSE(Engine.justifyAnswer(*SG, 0).has_value());
  auto CS = Engine.checkProvenance();
  EXPECT_EQ(CS.Justified, 0u);
  // The forest is still exported (SCC / completion bookkeeping is
  // unconditional) — only the consumer->producer edges need recording.
  ForestGraph F = Engine.exportForest();
  EXPECT_EQ(F.Nodes.size(), Engine.subgoals().size());
  EXPECT_TRUE(F.Edges.empty());
}

TEST(Justify, SurvivesReleaseCompletedState) {
  // Supplementary tabling frees clause frontiers at completion
  // (releaseCompletedState); justifications are materialized into the
  // arena at record time and must survive that.
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProg).hasValue());
  Solver::Options O;
  O.SupplementaryTabling = true;
  O.RecordProvenance = true;
  Solver Engine(DB, O);
  auto G = Parser::parseTerm(Syms, Engine.store(), "path(a, X)");
  Engine.solve(*G, nullptr);
  EXPECT_GT(Engine.stats().FrontierBytesFreed, 0u);
  auto CS = Engine.checkProvenance();
  EXPECT_EQ(CS.Justified, Engine.stats().AnswersRecorded);
  EXPECT_EQ(CS.Dangling, 0u);
  // And the arena is accounted in table space.
  EXPECT_GT(Engine.provenance()->memoryBytes(), 0u);
}

//===----------------------------------------------------------------------===//
// Forest export
//===----------------------------------------------------------------------===//

TEST(Forest, DotIsBalancedDedupedAndComplete) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProg).hasValue());
  Solver::Options O;
  O.RecordProvenance = true;
  Solver Engine(DB, O);
  auto G = Parser::parseTerm(Syms, Engine.store(), "path(a, X)");
  Engine.solve(*G, nullptr);

  ForestGraph F = Engine.exportForest();
  ASSERT_EQ(F.Nodes.size(), Engine.subgoals().size());
  EXPECT_FALSE(F.Edges.empty());
  for (const ForestNode &N : F.Nodes) {
    EXPECT_TRUE(N.Complete);
    EXPECT_FALSE(N.Incomplete);
    EXPECT_GT(N.SccId, 0u);           // 1-based; 0 = never completed.
    EXPECT_GT(N.CompletionOrder, 0u);
  }

  std::string Dot = forestToDot(F);
  EXPECT_TRUE(bracketBalanced(Dot)) << Dot;
  EXPECT_NE(Dot.find("digraph slg_forest"), std::string::npos);
  // Every edge line appears exactly once (edges are deduped).
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  size_t EdgeLines = 0;
  for (size_t Pos = 0; (Pos = Dot.find(" -> ", Pos)) != std::string::npos;
       ++Pos)
    ++EdgeLines;
  for (const ForestEdge &E : F.Edges) {
    EXPECT_TRUE(Seen.insert({E.Consumer, E.Producer}).second)
        << "duplicate edge " << E.Consumer << "->" << E.Producer;
    EXPECT_LT(E.Consumer, F.Nodes.size());
    EXPECT_LT(E.Producer, F.Nodes.size());
  }
  EXPECT_EQ(EdgeLines, F.Edges.size());

  std::string Json = forestToJson(F);
  EXPECT_TRUE(bracketBalanced(Json)) << Json;
  EXPECT_NE(Json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(Json.find("\"edges\""), std::string::npos);
  EXPECT_NE(Json.find("\"scc\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Aggregation joins (Section 6.2 mode summaries)
//===----------------------------------------------------------------------===//

TEST(Justify, AggregatedAnswersStayValid) {
  // AggregateModes joins answers in place (answer 0 is overwritten);
  // justification premises must stay within the live tables and the proof
  // walker must not loop on any self-reference the join introduces.
  SymbolTable Syms;
  GroundnessAnalyzer::Options O;
  O.AggregateModes = true;
  O.Engine.RecordProvenance = true;
  GroundnessAnalyzer A(Syms, O);
  auto R = A.analyze(R"(
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    rev([], []).
    rev([X|Xs], R) :- rev(Xs, T), app(T, [X], R).
  )");
  ASSERT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  EXPECT_GT(R->JustifiedAnswers, 0u);
  EXPECT_EQ(R->DanglingPremises, 0u);
}

//===----------------------------------------------------------------------===//
// Analyzer explain() entry points
//===----------------------------------------------------------------------===//

TEST(Explain, GroundnessProofTreeOverSourceClauses) {
  SymbolTable Syms;
  GroundnessAnalyzer A(Syms);
  auto Text = A.explain(R"(
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
  )",
                        "app", 3, 2);
  ASSERT_TRUE(Text.hasValue()) << (Text ? "" : Text.getError().str());
  EXPECT_NE(Text->find("why app/3"), std::string::npos) << *Text;
  EXPECT_NE(Text->find("clause"), std::string::npos) << *Text;
  // Labels read over the source program: the gp_ prefix is stripped.
  EXPECT_EQ(Text->find("gp_"), std::string::npos) << *Text;
  EXPECT_TRUE(bracketBalanced(*Text)) << *Text;

  EXPECT_FALSE(A.explain("p(a).", "q", 1, 0).hasValue()); // Unknown pred.
  EXPECT_FALSE(A.explain("p(a).", "p", 1, 5).hasValue()); // Arg range.
}

TEST(Explain, StrictnessWitnessOverDemandRules) {
  StrictnessAnalyzer A;
  auto Text = A.explain(R"(
    ap(nil, ys) = ys.
    ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).
  )",
                        "ap", 0);
  ASSERT_TRUE(Text.hasValue()) << (Text ? "" : Text.getError().str());
  EXPECT_NE(Text->find("why ap/2"), std::string::npos) << *Text;
  EXPECT_NE(Text->find("meet over"), std::string::npos) << *Text;
  EXPECT_TRUE(bracketBalanced(*Text)) << *Text;

  EXPECT_FALSE(A.explain("id(x) = x.", "nope", 0).hasValue());
  EXPECT_FALSE(A.explain("id(x) = x.", "id", 3).hasValue());
}

TEST(Explain, DepthKConcreteClausesAndWidening) {
  SymbolTable Syms;
  DepthKAnalyzer A(Syms);
  auto Text = A.explain(R"(
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    main(R) :- app([a, b], [c], R).
  )",
                        "main", 1, 0);
  ASSERT_TRUE(Text.hasValue()) << (Text ? "" : Text.getError().str());
  EXPECT_NE(Text->find("why main/1"), std::string::npos) << *Text;
  EXPECT_TRUE(bracketBalanced(*Text)) << *Text;

  // Forced widening: justification collapses to the fold marker instead
  // of misattributing a dead derivation, and nothing dangles.
  SymbolTable Syms2;
  DepthKAnalyzer::Options WO;
  WO.MaxAnswersPerCall = 1;
  WO.RecordProvenance = true;
  DepthKAnalyzer W(Syms2, WO);
  auto R = W.analyze(R"(
    color(red). color(green). color(blue).
    pick(C) :- color(C).
  )");
  ASSERT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  EXPECT_GT(R->Widenings, 0u);
  EXPECT_EQ(R->DanglingPremises, 0u);

  SymbolTable Syms3;
  DepthKAnalyzer WE(Syms3, WO);
  auto WText = WE.explain(R"(
    color(red). color(green). color(blue).
    pick(C) :- color(C).
  )",
                          "pick", 1, 0);
  ASSERT_TRUE(WText.hasValue()) << (WText ? "" : WText.getError().str());
  EXPECT_NE(WText->find("folded"), std::string::npos) << *WText;
  EXPECT_TRUE(bracketBalanced(*WText)) << *WText;
}

//===----------------------------------------------------------------------===//
// Fleet: justifications stay valid under --jobs N
//===----------------------------------------------------------------------===//

TEST(Justify, FleetParallelMatchesSerialWithProvenance) {
  std::vector<CorpusJob> Jobs =
      CorpusScheduler::kindJobs(CorpusJobKind::Groundness);

  CorpusScheduler::Options SO;
  SO.Jobs = 1;
  SO.RecordProvenance = true;
  CorpusScheduler Serial(SO);
  auto SerialRes = Serial.run(Jobs);

  CorpusScheduler::Options PO;
  PO.Jobs = 4;
  PO.RecordProvenance = true;
  CorpusScheduler Par(PO);
  auto ParRes = Par.run(Jobs);

  ASSERT_EQ(SerialRes.size(), ParRes.size());
  for (size_t I = 0; I < SerialRes.size(); ++I) {
    const CorpusJobResult &S = SerialRes[I];
    const CorpusJobResult &P = ParRes[I];
    EXPECT_TRUE(S.Ok) << S.Program << ": " << S.Error;
    EXPECT_EQ(S.Ok, P.Ok) << S.Program;
    EXPECT_EQ(S.Fingerprints, P.Fingerprints) << S.Program;
    EXPECT_GT(S.JustifiedAnswers, 0u) << S.Program;
    EXPECT_EQ(S.DanglingPremises, 0u) << S.Program;
    EXPECT_EQ(P.DanglingPremises, 0u) << P.Program;
    // The "$provenance ..." fingerprint line participates in the
    // comparison above; make sure it is actually there.
    ASSERT_FALSE(S.Fingerprints.empty());
    EXPECT_EQ(S.Fingerprints.back().rfind("$provenance ", 0), 0u)
        << S.Fingerprints.back();
  }
}

} // namespace
