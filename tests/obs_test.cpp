//===- obs_test.cpp - Observability layer tests -------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Covers the src/obs subsystem end to end: the JSON writer, histograms,
// the metrics registry, SLG event ordering from the engine, the
// disabled-path guarantee (no sink => no events), table snapshots,
// resetStats() semantics, and the Chrome trace exporter.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "prop/Groundness.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace lpa;

namespace {

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("name", "a\"b\\c\n");
  W.member("n", uint64_t(42));
  W.member("neg", int64_t(-7));
  W.member("pi", 3.5);
  W.member("flag", true);
  W.key("rows");
  W.beginArray();
  W.value(uint64_t(1));
  W.value("two");
  W.beginObject();
  W.endObject();
  W.endArray();
  W.endObject();
  EXPECT_EQ(Out, "{\"name\":\"a\\\"b\\\\c\\n\",\"n\":42,\"neg\":-7,"
                 "\"pi\":3.5,\"flag\":true,\"rows\":[1,\"two\",{}]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::string Out;
  JsonWriter W(Out);
  W.beginArray();
  W.value(std::numeric_limits<double>::infinity());
  W.value(std::numeric_limits<double>::quiet_NaN());
  W.endArray();
  EXPECT_EQ(Out, "[null,null]");
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, BasicStatistics) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  for (uint64_t V : {1, 1, 2, 3, 100})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_DOUBLE_EQ(H.mean(), 107.0 / 5);
  // Median falls in the bucket holding the small values.
  EXPECT_LE(H.quantile(0.5), 3u);
  EXPECT_LE(H.quantile(1.0), 100u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.max(), 0u);
}

TEST(Histogram, ZeroAndLargeValues) {
  Histogram H;
  H.record(0);
  H.record(~uint64_t(0));
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), ~uint64_t(0));
  EXPECT_EQ(H.quantile(0.0), 0u);
}

TEST(Histogram, QuantileEdgeCasesArePinned) {
  // Empty: every Q reports 0.
  Histogram Empty;
  for (double Q : {-1.0, 0.0, 0.5, 1.0, 2.0})
    EXPECT_EQ(Empty.quantile(Q), 0u) << Q;

  // {5, 6, 7} all land in bucket 3 (values in [4, 8)); the bucket's upper
  // bound is 7. Q <= 0 must report exactly min() (5, not the bucket
  // bound), and Q >= 1 exactly max().
  Histogram H;
  for (uint64_t V : {5, 6, 7})
    H.record(V);
  EXPECT_EQ(H.quantile(0.0), 5u);
  EXPECT_EQ(H.quantile(-0.5), 5u);
  EXPECT_EQ(H.quantile(1.0), 7u);
  EXPECT_EQ(H.quantile(1.5), 7u);
  EXPECT_EQ(H.quantile(0.5), 7u); // Mid falls in the bucket; bound = 7.

  // {1, 2, 4, 8} spread across buckets: interior quantiles return bucket
  // upper bounds (2^B - 1), clamped into [min, max].
  Histogram S;
  for (uint64_t V : {1, 2, 4, 8})
    S.record(V);
  EXPECT_EQ(S.quantile(0.0), 1u);
  EXPECT_EQ(S.quantile(0.25), 1u); // Bucket 1 covers [1, 2); bound = 1.
  EXPECT_EQ(S.quantile(0.99), 7u); // Bucket 3 covers [4, 8); bound = 7.
  EXPECT_EQ(S.quantile(1.0), 8u);  // Exactly max, above every bound.
}

//===----------------------------------------------------------------------===//
// Event ordering from the engine (the tentpole's correctness core)
//===----------------------------------------------------------------------===//

/// One tabled evaluation of path/2 over a 3-cycle with a tracer attached.
struct TracedRun {
  SymbolTable Symbols;
  Database DB{Symbols};
  Solver Engine{DB};
  Tracer Trace;
  RecordingSink Sink;

  explicit TracedRun(bool AttachSink = true) {
    EXPECT_TRUE(DB.consult(":- table path/2.\n"
                           "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
                           "path(X, Y) :- edge(X, Y).\n"
                           "edge(a, b). edge(b, c). edge(c, a).\n"));
    if (AttachSink)
      Trace.setSink(&Sink);
    Engine.setObservability(&Trace, nullptr);
  }

  size_t solve(const char *Goal) {
    auto N = Engine.solveText(Goal, nullptr);
    EXPECT_TRUE(bool(N));
    return N ? *N : 0;
  }
};

TEST(TraceEvents, TabledEvaluationEventOrdering) {
  TracedRun R;
  EXPECT_EQ(R.solve("path(a, X)"), 3u);

  const std::vector<TraceEvent> &Es = R.Sink.events();
  ASSERT_FALSE(Es.empty());

  auto FirstOf = [&](TraceEventKind K) {
    return std::find_if(Es.begin(), Es.end(),
                        [&](const TraceEvent &E) { return E.Kind == K; });
  };
  auto LastOf = [&](TraceEventKind K) {
    auto It = std::find_if(Es.rbegin(), Es.rend(),
                           [&](const TraceEvent &E) { return E.Kind == K; });
    return It == Es.rend() ? Es.end() : It.base() - 1;
  };

  // The SLG lifecycle: the tabled call precedes its subgoal's creation,
  // every answer lands before the subgoal completes.
  auto Call = FirstOf(TraceEventKind::TabledCall);
  auto New = FirstOf(TraceEventKind::SubgoalNew);
  auto Ans = FirstOf(TraceEventKind::AnswerNew);
  auto Done = FirstOf(TraceEventKind::SubgoalComplete);
  ASSERT_NE(Call, Es.end());
  ASSERT_NE(New, Es.end());
  ASSERT_NE(Ans, Es.end());
  ASSERT_NE(Done, Es.end());
  EXPECT_LT(Call - Es.begin(), New - Es.begin());
  EXPECT_LT(New - Es.begin(), Ans - Es.begin());
  EXPECT_LT(LastOf(TraceEventKind::AnswerNew) - Es.begin(),
            Done - Es.begin());

  // path(a,_) over a 3-cycle: 3 answers for the one subgoal.
  EXPECT_EQ(R.Sink.count(TraceEventKind::SubgoalNew), 1u);
  EXPECT_EQ(R.Sink.count(TraceEventKind::AnswerNew), 3u);
  EXPECT_EQ(R.Sink.count(TraceEventKind::SubgoalComplete), 1u);
  EXPECT_GE(R.Sink.count(TraceEventKind::ClauseResolve), 2u);

  // The completion event carries the final answer count as payload.
  EXPECT_EQ(Done->Value, 3u);

  // Event times are monotone (nowNs is a monotonic clock).
  for (size_t I = 1; I < Es.size(); ++I)
    EXPECT_LE(Es[I - 1].TimeNs, Es[I].TimeNs);

  // Every predicate-carrying event names path/2 or edge/2.
  SymbolId Path = R.Symbols.intern("path");
  SymbolId Edge = R.Symbols.intern("edge");
  for (const TraceEvent &E : Es)
    if (E.Kind != TraceEventKind::SpanBegin &&
        E.Kind != TraceEventKind::SpanEnd) {
      EXPECT_TRUE(E.Sym == Path || E.Sym == Edge);
      EXPECT_EQ(E.Arity, 2u);
    }
}

TEST(TraceEvents, CompletedTableReplayEmitsNoNewSubgoals) {
  TracedRun R;
  R.solve("path(a, X)");
  R.Sink.clear();
  // Re-querying a completed subgoal replays from the table: a tabled call
  // happens, but no subgoal creation, answers, or completion.
  EXPECT_EQ(R.solve("path(a, X)"), 3u);
  EXPECT_GE(R.Sink.count(TraceEventKind::TabledCall), 1u);
  EXPECT_EQ(R.Sink.count(TraceEventKind::SubgoalNew), 0u);
  EXPECT_EQ(R.Sink.count(TraceEventKind::AnswerNew), 0u);
  EXPECT_EQ(R.Sink.count(TraceEventKind::SubgoalComplete), 0u);
}

TEST(TraceEvents, DetachedSinkRecordsNothing) {
  // A tracer with no sink is the "disabled" configuration: the engine
  // still runs the same evaluation, and the recording sink — attached
  // only afterwards — must have seen zero events.
  TracedRun R(/*AttachSink=*/false);
  EXPECT_FALSE(R.Trace.enabled());
  EXPECT_EQ(R.solve("path(a, X)"), 3u);
  EXPECT_TRUE(R.Sink.events().empty());

  // Attaching mid-session starts the stream from that point.
  R.Trace.setSink(&R.Sink);
  R.solve("path(b, X)");
  EXPECT_FALSE(R.Sink.events().empty());
}

TEST(TraceEvents, KindNamesAreStable) {
  EXPECT_STREQ(traceEventKindName(TraceEventKind::TabledCall),
               "tabled-call");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::SubgoalNew),
               "subgoal-new");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::AnswerNew), "answer-new");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::AnswerDup), "answer-dup");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::SubgoalComplete),
               "subgoal-complete");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::SpanBegin), "span-begin");
}

//===----------------------------------------------------------------------===//
// Metrics registry + engine integration
//===----------------------------------------------------------------------===//

TEST(Metrics, PerPredicateCountersMatchEvalStats) {
  SymbolTable Symbols;
  Database DB(Symbols);
  ASSERT_TRUE(DB.consult(":- table path/2.\n"
                         "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
                         "path(X, Y) :- edge(X, Y).\n"
                         "edge(a, b). edge(b, c). edge(c, a).\n"));
  Solver Engine(DB);
  MetricsRegistry Reg;
  Engine.setObservability(nullptr, &Reg);
  ASSERT_TRUE(bool(Engine.solveText("path(a, X)", nullptr)));

  uint64_t Calls = 0, Subgoals = 0, NewAns = 0, DupAns = 0, Resol = 0;
  for (const PredMetrics *PM : Reg.predicates()) {
    Calls += PM->Calls;
    Subgoals += PM->NewSubgoals;
    NewAns += PM->NewAnswers;
    DupAns += PM->DupAnswers;
    Resol += PM->Resolutions;
  }
  const EvalStats &S = Engine.stats();
  EXPECT_EQ(Calls, S.TabledCalls);
  EXPECT_EQ(Subgoals, S.SubgoalsCreated);
  EXPECT_EQ(NewAns, S.AnswersRecorded);
  EXPECT_EQ(DupAns, S.AnswersDuplicate);
  EXPECT_EQ(Resol, S.ClauseResolutions);

  // First-touch order and qualified names survive into the report.
  std::string Report = Reg.renderReport();
  EXPECT_NE(Report.find("path/2"), std::string::npos);
  EXPECT_NE(Report.find("Predicate"), std::string::npos);
}

TEST(Metrics, TableSnapshotMatchesEngineTables) {
  SymbolTable Symbols;
  Database DB(Symbols);
  ASSERT_TRUE(DB.consult(":- table p/1.\n p(1). p(2). p(3).\n"
                         ":- table q/1.\n q(X) :- p(X).\n"));
  Solver Engine(DB);
  MetricsRegistry Reg;
  Engine.setObservability(nullptr, &Reg);
  ASSERT_TRUE(bool(Engine.solveText("q(X)", nullptr)));

  Engine.snapshotTableMetrics(Reg);
  uint64_t Subgoals = 0, Answers = 0, Bytes = 0;
  for (const PredMetrics *PM : Reg.predicates()) {
    Subgoals += PM->TableSubgoals;
    Answers += PM->TableAnswers;
    Bytes += PM->TableBytes;
  }
  EXPECT_EQ(Subgoals, Engine.subgoals().size());
  uint64_t EngineAnswers = 0;
  for (const Subgoal *SG : Engine.subgoals())
    EngineAnswers += Engine.answerCount(*SG);
  EXPECT_EQ(Answers, EngineAnswers);
  EXPECT_GT(Bytes, 0u);

  // Snapshots are idempotent: a second snapshot assigns, not accumulates.
  Engine.snapshotTableMetrics(Reg);
  uint64_t Subgoals2 = 0;
  for (const PredMetrics *PM : Reg.predicates())
    Subgoals2 += PM->TableSubgoals;
  EXPECT_EQ(Subgoals2, Subgoals);

  // The registry's global counters mirror EvalStats + table space.
  std::string Json;
  JsonWriter W(Json);
  Reg.writeJson(W);
  EXPECT_NE(Json.find("\"table_space_bytes\":"), std::string::npos);
  EXPECT_NE(Json.find("\"predicates\":["), std::string::npos);
  EXPECT_NE(Json.find("\"answers_per_subgoal\":{"), std::string::npos);
}

TEST(Metrics, PhaseSpansAccumulateAndExport) {
  MetricsRegistry Reg;
  Tracer Trace;
  RecordingSink Sink;
  Trace.setSink(&Sink);
  {
    ScopedSpan Outer(&Trace, &Reg, "evaluate");
  }
  {
    ScopedSpan Again(&Trace, &Reg, "evaluate");
  }
  ASSERT_EQ(Reg.phases().size(), 1u); // Same label accumulates.
  EXPECT_EQ(Reg.phases()[0].first, "evaluate");
  EXPECT_GE(Reg.phases()[0].second, 0.0);
  EXPECT_EQ(Sink.count(TraceEventKind::SpanBegin), 2u);
  EXPECT_EQ(Sink.count(TraceEventKind::SpanEnd), 2u);
}

/// Satellite: guarded self-checks. In default builds this documents that
/// the flag is off; configuring with -DLPA_ENABLE_TRACE_ASSERTS=ON flips
/// it and enables the span-balance bookkeeping asserted here.
TEST(TraceAsserts, FlagMatchesBuildConfiguration) {
#if LPA_TRACE_ASSERTS
  EXPECT_TRUE(traceAssertsEnabled());
  Tracer T;
  EXPECT_EQ(T.openSpans(), 0u);
  T.beginSpan("phase");
  EXPECT_EQ(T.openSpans(), 1u);
  T.endSpan("phase");
  EXPECT_EQ(T.openSpans(), 0u);
#else
  EXPECT_FALSE(traceAssertsEnabled());
#endif
}

//===----------------------------------------------------------------------===//
// resetStats() semantics (satellite regression test)
//===----------------------------------------------------------------------===//

TEST(ResetStats, CountersOnlyTablesPersist) {
  SymbolTable Symbols;
  Database DB(Symbols);
  ASSERT_TRUE(DB.consult(":- table path/2.\n"
                         "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
                         "path(X, Y) :- edge(X, Y).\n"
                         "edge(a, b). edge(b, c). edge(c, a).\n"));
  Solver Engine(DB);
  ASSERT_TRUE(bool(Engine.solveText("path(a, X)", nullptr)));
  EXPECT_GT(Engine.stats().SubgoalsCreated, 0u);
  EXPECT_GT(Engine.stats().AnswersRecorded, 0u);
  size_t BytesBefore = Engine.tableSpaceBytes();

  // resetStats() zeroes counters but keeps the tables.
  Engine.resetStats();
  EXPECT_EQ(Engine.stats().SubgoalsCreated, 0u);
  EXPECT_EQ(Engine.stats().AnswersRecorded, 0u);
  EXPECT_EQ(Engine.stats().TabledCalls, 0u);
  EXPECT_EQ(Engine.tableSpaceBytes(), BytesBefore);

  // Re-evaluating the completed goal replays answers from the table: the
  // call is counted, but no subgoal creation or answer recording happens.
  auto N = Engine.solveText("path(a, X)", nullptr);
  ASSERT_TRUE(bool(N));
  EXPECT_EQ(*N, 3u);
  EXPECT_GT(Engine.stats().TabledCalls, 0u);
  EXPECT_EQ(Engine.stats().SubgoalsCreated, 0u);
  EXPECT_EQ(Engine.stats().AnswersRecorded, 0u);

  // clearTables() + resetStats() gives the from-scratch measurement: the
  // same query re-derives everything.
  Engine.clearTables();
  Engine.resetStats();
  ASSERT_TRUE(bool(Engine.solveText("path(a, X)", nullptr)));
  EXPECT_GT(Engine.stats().SubgoalsCreated, 0u);
  EXPECT_EQ(Engine.stats().AnswersRecorded, 3u);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(ChromeTrace, SpansAndInstantsSerialize) {
  SymbolTable Symbols;
  SymbolId P = Symbols.intern("p");
  Tracer Trace;
  RecordingSink Sink;
  Trace.setSink(&Sink);
  Trace.beginSpan("evaluate");
  Trace.emit(TraceEventKind::TabledCall, P, 2);
  Trace.emit(TraceEventKind::AnswerNew, P, 2, 1);
  Trace.endSpan("evaluate");

  std::string Json = formatChromeTrace(Sink.events(), Symbols);
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"evaluate\""), std::string::npos);
  EXPECT_NE(Json.find("p/2"), std::string::npos);
  // Braces balance (cheap well-formedness check; we have no parser).
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));
}

TEST(Exporters, GroundnessAnalysisFillsRegistry) {
  // End-to-end: the groundness analyzer wires spans + engine metrics into
  // a caller-supplied registry that outlives the analysis run.
  SymbolTable Symbols;
  MetricsRegistry Reg;
  Tracer Trace;
  RecordingSink Sink;
  Trace.setSink(&Sink);
  GroundnessAnalyzer::Options Opts;
  Opts.Trace = &Trace;
  Opts.Metrics = &Reg;
  GroundnessAnalyzer Analyzer(Symbols, Opts);
  auto R = Analyzer.analyze("app([], Y, Y).\n"
                            "app([H|T], Y, [H|Z]) :- app(T, Y, Z).\n");
  ASSERT_TRUE(bool(R));

  // All three phases were spanned.
  std::vector<std::string> Names;
  for (const auto &[Name, Secs] : Reg.phases())
    Names.push_back(Name);
  EXPECT_NE(std::find(Names.begin(), Names.end(), "transform"),
            Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "evaluate"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "collect"), Names.end());
  EXPECT_EQ(Sink.count(TraceEventKind::SpanBegin), 3u);
  EXPECT_EQ(Sink.count(TraceEventKind::SpanEnd), 3u);

  // The abstract predicate's table shows up with answers and bytes.
  bool FoundApp = false;
  uint64_t TotalTableBytes = 0;
  for (const PredMetrics *PM : Reg.predicates()) {
    TotalTableBytes += PM->TableBytes;
    if (PM->Name == "gp_app" && PM->Arity == 3) {
      FoundApp = true;
      EXPECT_GT(PM->TableSubgoals, 0u);
      EXPECT_GT(PM->TableAnswers, 0u);
      EXPECT_GT(PM->TableBytes, 0u);
    }
  }
  EXPECT_TRUE(FoundApp);
  // Apportioned per-pred bytes stay below the engine's global accounting
  // plus per-subgoal overhead, and are nonzero.
  EXPECT_GT(TotalTableBytes, 0u);
}

//===----------------------------------------------------------------------===//
// Bounded ring-buffer sink
//===----------------------------------------------------------------------===//

TEST(RingBuffer, UnboundedByDefault) {
  RecordingSink Sink;
  Tracer Trace;
  Trace.setSink(&Sink);
  for (uint64_t I = 0; I < 100; ++I)
    Trace.emit(TraceEventKind::ClauseResolve, 1, 0, I);
  EXPECT_EQ(Sink.events().size(), 100u);
  EXPECT_EQ(Sink.droppedCount(), 0u);
}

TEST(RingBuffer, KeepsExactlyTheLastNInArrivalOrder) {
  // Exactness: every received event is either in the kept window or
  // counted as dropped, and the window is precisely the newest N.
  RecordingSink Sink(TraceOptions{/*MaxEvents=*/8});
  Tracer Trace;
  Trace.setSink(&Sink);
  const uint64_t Total = 27; // wraps the ring 3+ times, lands mid-ring
  for (uint64_t I = 0; I < Total; ++I)
    Trace.emit(TraceEventKind::AnswerNew, 1, 2, /*Value=*/I);

  const std::vector<TraceEvent> &Kept = Sink.events();
  ASSERT_EQ(Kept.size(), 8u);
  EXPECT_EQ(Sink.droppedCount(), Total - 8);
  EXPECT_EQ(Sink.droppedCount() + Kept.size(), Total);
  for (size_t I = 0; I < Kept.size(); ++I)
    EXPECT_EQ(Kept[I].Value, Total - 8 + I) << "slot " << I;
  // Timestamps still monotone across the linearized window.
  for (size_t I = 1; I < Kept.size(); ++I)
    EXPECT_GE(Kept[I].TimeNs, Kept[I - 1].TimeNs);
}

TEST(RingBuffer, ExactCapacityDoesNotDrop) {
  RecordingSink Sink(TraceOptions{4});
  Tracer Trace;
  Trace.setSink(&Sink);
  for (uint64_t I = 0; I < 4; ++I)
    Trace.emit(TraceEventKind::TabledCall, 1, 1, I);
  ASSERT_EQ(Sink.events().size(), 4u);
  EXPECT_EQ(Sink.droppedCount(), 0u);
  EXPECT_EQ(Sink.events().front().Value, 0u);
  EXPECT_EQ(Sink.events().back().Value, 3u);
}

TEST(RingBuffer, ClearResetsWindowAndDropCounter) {
  RecordingSink Sink(TraceOptions{2});
  Tracer Trace;
  Trace.setSink(&Sink);
  for (uint64_t I = 0; I < 5; ++I)
    Trace.emit(TraceEventKind::ClauseResolve, 1, 0, I);
  EXPECT_EQ(Sink.droppedCount(), 3u);
  Sink.clear();
  EXPECT_TRUE(Sink.events().empty());
  EXPECT_EQ(Sink.droppedCount(), 0u);
  // The ring refills from scratch after clear().
  Trace.emit(TraceEventKind::ClauseResolve, 1, 0, 7);
  ASSERT_EQ(Sink.events().size(), 1u);
  EXPECT_EQ(Sink.events()[0].Value, 7u);
}

TEST(RingBuffer, CountSeesOnlyTheKeptWindow) {
  RecordingSink Sink(TraceOptions{3});
  Tracer Trace;
  Trace.setSink(&Sink);
  for (uint64_t I = 0; I < 10; ++I)
    Trace.emit(TraceEventKind::AnswerDup, 1, 1, I);
  Trace.emit(TraceEventKind::AnswerNew, 1, 1, 10);
  EXPECT_EQ(Sink.count(TraceEventKind::AnswerDup), 2u);
  EXPECT_EQ(Sink.count(TraceEventKind::AnswerNew), 1u);
}

//===----------------------------------------------------------------------===//
// Registry merge: counters vs watermarks
//===----------------------------------------------------------------------===//

TEST(Metrics, MergeSumsCountersButMaxesWatermarks) {
  MetricsRegistry A, B;
  A.setCounter("subgoals", 10);
  B.setCounter("subgoals", 32);
  // Shard A peaked higher on one watermark, shard B on the other.
  A.noteWatermark("peak_table_space_bytes", 5000);
  B.noteWatermark("peak_table_space_bytes", 3000);
  A.noteWatermark("peak_term_store_bytes", 100);
  B.noteWatermark("peak_term_store_bytes", 900);
  B.noteWatermark("peak_scc_frontier_bytes", 42); // only in B

  A.mergeFrom(B);

  auto Lookup = [](const MetricsRegistry &R, std::string_view Name,
                   bool Watermark) -> uint64_t {
    const auto &Vec = Watermark ? R.watermarks() : R.counters();
    for (const auto &[N, V] : Vec)
      if (N == Name)
        return V;
    return ~uint64_t(0);
  };
  // Counters are per-run totals: fleet-wide means sum.
  EXPECT_EQ(Lookup(A, "subgoals", false), 42u);
  // Watermarks are peaks: fleet-wide means max, never sum.
  EXPECT_EQ(Lookup(A, "peak_table_space_bytes", true), 5000u);
  EXPECT_EQ(Lookup(A, "peak_term_store_bytes", true), 900u);
  EXPECT_EQ(Lookup(A, "peak_scc_frontier_bytes", true), 42u);
}

TEST(Metrics, NoteWatermarkNeverLowers) {
  MetricsRegistry R;
  R.noteWatermark("peak", 100);
  R.noteWatermark("peak", 40);
  R.noteWatermark("peak", 60);
  ASSERT_EQ(R.watermarks().size(), 1u);
  EXPECT_EQ(R.watermarks()[0].second, 100u);
}

TEST(Metrics, WatermarksSurviveResetStatsAndExport) {
  MetricsRegistry R;
  R.noteWatermark("peak_table_space_bytes", 777);
  std::string Out;
  JsonWriter W(Out);
  R.writeJson(W);
  EXPECT_NE(Out.find("\"watermarks\":{\"peak_table_space_bytes\":777}"),
            std::string::npos)
      << Out;
}

//===----------------------------------------------------------------------===//
// Multi-thread Chrome trace stitching
//===----------------------------------------------------------------------===//

TEST(ChromeTrace, EmptyWorkerLaneSerializes) {
  // A fleet worker that drew no jobs contributes an empty buffer; the
  // exporter must emit valid JSON, not crash or emit a dangling comma.
  SymbolTable Symbols;
  SymbolId P = Symbols.intern("p");
  Tracer Trace;
  RecordingSink Sink;
  Trace.setSink(&Sink);
  Trace.emit(TraceEventKind::TabledCall, P, 1);

  std::vector<ThreadTrace> Threads;
  Threads.push_back({1, Sink.events()});
  Threads.push_back({2, {}}); // idle worker
  std::string Json = formatChromeTraceThreads(Threads, &Symbols);
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("p/1"), std::string::npos);
  EXPECT_EQ(Json.find(",]"), std::string::npos);
  EXPECT_EQ(Json.find(",,"), std::string::npos);
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));

  // All-empty lane set still renders a well-formed document.
  std::vector<ThreadTrace> AllIdle(3);
  std::string Empty = formatChromeTraceThreads(AllIdle, nullptr);
  EXPECT_NE(Empty.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(std::count(Empty.begin(), Empty.end(), '{'),
            std::count(Empty.begin(), Empty.end(), '}'));
}

TEST(ChromeTrace, DroppedEventsSurfaceInExport) {
  // A bounded ring that wrapped must not present its window as the whole
  // trace: the export leads with a "trace-truncated" instant carrying the
  // eviction count and a top-level "droppedEvents" member.
  SymbolTable Symbols;
  SymbolId P = Symbols.intern("p");
  Tracer Trace;
  RecordingSink Sink(TraceOptions{/*MaxEvents=*/4});
  Trace.setSink(&Sink);
  for (int I = 0; I < 10; ++I)
    Trace.emit(TraceEventKind::TabledCall, P, 1, I);
  ASSERT_EQ(Sink.droppedCount(), 6u);

  std::string Json =
      formatChromeTrace(Sink.events(), Symbols, Sink.droppedCount());
  EXPECT_NE(Json.find("\"trace-truncated\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"dropped\":6"), std::string::npos);
  EXPECT_NE(Json.find("\"droppedEvents\":6"), std::string::npos);
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));

  // An unbounded sink reports nothing dropped and no truncation marker.
  std::string Clean = formatChromeTrace(Sink.events(), Symbols, 0);
  EXPECT_EQ(Clean.find("trace-truncated"), std::string::npos);
  EXPECT_EQ(Clean.find("droppedEvents"), std::string::npos);
}

TEST(ChromeTrace, ThreadedExportSumsPerLaneDrops) {
  SymbolTable Symbols;
  SymbolId P = Symbols.intern("p");
  Tracer Trace;
  RecordingSink A(TraceOptions{/*MaxEvents=*/2});
  Trace.setSink(&A);
  for (int I = 0; I < 5; ++I)
    Trace.emit(TraceEventKind::TabledCall, P, 1);
  RecordingSink B(TraceOptions{/*MaxEvents=*/2});
  Trace.setSink(&B);
  for (int I = 0; I < 4; ++I)
    Trace.emit(TraceEventKind::AnswerNew, P, 1);

  std::vector<ThreadTrace> Threads;
  Threads.push_back({1, A.events(), A.droppedCount()});
  Threads.push_back({2, B.events(), B.droppedCount()});
  std::string Json = formatChromeTraceThreads(Threads, &Symbols);
  // 3 dropped on lane 1 + 2 on lane 2; each lane gets its own marker.
  EXPECT_NE(Json.find("\"droppedEvents\":5"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"dropped\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"dropped\":2"), std::string::npos);
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
}

TEST(TraceEvents, QueryIdStampsEvents) {
  // Tracer::setQuery scopes every subsequent event; the Chrome export
  // carries the id in args so one shared buffer can be sliced per query.
  SymbolTable Symbols;
  SymbolId P = Symbols.intern("p");
  Tracer Trace;
  RecordingSink Sink;
  Trace.setSink(&Sink);
  Trace.emit(TraceEventKind::TabledCall, P, 1); // Unscoped.
  Trace.setQuery(7);
  Trace.emit(TraceEventKind::TabledCall, P, 1);
  Trace.setQuery(8);
  Trace.emit(TraceEventKind::AnswerNew, P, 1);

  ASSERT_EQ(Sink.events().size(), 3u);
  EXPECT_EQ(Sink.events()[0].QueryId, 0u);
  EXPECT_EQ(Sink.events()[1].QueryId, 7u);
  EXPECT_EQ(Sink.events()[2].QueryId, 8u);

  std::string Json = formatChromeTrace(Sink.events(), Symbols);
  EXPECT_NE(Json.find("\"query\":7"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"query\":8"), std::string::npos);
}

} // namespace
