//===- par_test.cpp - Parallel corpus analysis tests ------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The fleet invariant: every analysis run owns its SymbolTable, TermStore
// and Solver, so fanning the corpus across worker threads (XSB-style
// private tables) must change nothing about any individual result. These
// tests pin that down — pool mechanics, serial-vs-parallel bit-identity,
// and the sharded observability merge.
//
//===----------------------------------------------------------------------===//

#include "par/CorpusScheduler.h"
#include "par/ThreadPool.h"

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace lpa;

namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 0u);
  int Order = 0;
  int First = -1, Second = -1;
  Pool.submit([&] { First = Order++; });
  Pool.submit([&] { Second = Order++; });
  // Inline mode executes during submit, in submission order.
  EXPECT_EQ(First, 0);
  EXPECT_EQ(Second, 1);
  Pool.wait(); // No-op, but must not deadlock.
  EXPECT_EQ(Pool.stealCount(), 0u);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Batch = 0; Batch < 3; ++Batch) {
    for (int I = 0; I < 20; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, SubmitFromWorkerThread) {
  // A task may enqueue follow-up work; wait() must cover it.
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int I = 0; I < 8; ++I)
    Pool.submit([&] {
      Count.fetch_add(1);
      Pool.submit([&Count] { Count.fetch_add(1); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 16);
}

TEST(ThreadPoolTest, CurrentWorkerIdIsScopedToWorkers) {
  EXPECT_EQ(ThreadPool::currentWorkerId(), SIZE_MAX);
  ThreadPool Pool(3);
  std::mutex Mu;
  std::set<size_t> Seen;
  for (int I = 0; I < 64; ++I)
    Pool.submit([&] {
      size_t W = ThreadPool::currentWorkerId();
      std::lock_guard<std::mutex> L(Mu);
      Seen.insert(W);
    });
  Pool.wait();
  EXPECT_FALSE(Seen.count(SIZE_MAX));
  for (size_t W : Seen)
    EXPECT_LT(W, 3u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  std::vector<std::atomic<int>> Hits(100);
  parallelFor(4, Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
  // Serial fallback covers the same range.
  parallelFor(1, Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 2) << "index " << I;
}

TEST(CorpusSchedulerTest, FullMatrixCoversCorpus) {
  auto Jobs = CorpusScheduler::fullMatrix();
  // 12 logic benchmarks x {Groundness, DepthK, WamLite} + 10 FL programs.
  EXPECT_EQ(Jobs.size(), 46u);
  size_t Strict = 0;
  for (const CorpusJob &J : Jobs)
    Strict += J.Kind == CorpusJobKind::Strictness;
  EXPECT_EQ(Strict, 10u);
}

// The central fleet invariant: parallel results are bit-identical to the
// serial run, job by job. WamLite is the cheapest kind, so the full dozen
// programs stay fast enough for a unit test; groundness is sampled too
// since it exercises the tabled engine end to end.
TEST(CorpusSchedulerTest, ParallelMatchesSerialWamLite) {
  auto Jobs = CorpusScheduler::kindJobs(CorpusJobKind::WamLite);
  CorpusScheduler::Options SO;
  SO.Jobs = 1;
  CorpusScheduler Serial(SO);
  auto SerialRes = Serial.run(Jobs);
  EXPECT_EQ(Serial.lastStealCount(), 0u);

  CorpusScheduler::Options PO;
  PO.Jobs = 4;
  CorpusScheduler Par(PO);
  auto ParRes = Par.run(Jobs);

  ASSERT_EQ(SerialRes.size(), ParRes.size());
  for (size_t I = 0; I < SerialRes.size(); ++I) {
    SCOPED_TRACE(SerialRes[I].Program);
    EXPECT_TRUE(SerialRes[I].Ok);
    EXPECT_EQ(SerialRes[I].Ok, ParRes[I].Ok);
    EXPECT_EQ(SerialRes[I].Fingerprints, ParRes[I].Fingerprints);
    EXPECT_FALSE(SerialRes[I].Fingerprints.empty());
  }
}

TEST(CorpusSchedulerTest, ParallelMatchesSerialGroundness) {
  auto Jobs = CorpusScheduler::kindJobs(CorpusJobKind::Groundness);
  CorpusScheduler::Options SO;
  SO.Jobs = 1;
  CorpusScheduler Serial(SO);
  auto SerialRes = Serial.run(Jobs);

  CorpusScheduler::Options PO;
  PO.Jobs = 4;
  CorpusScheduler Par(PO);
  auto ParRes = Par.run(Jobs);

  ASSERT_EQ(SerialRes.size(), ParRes.size());
  for (size_t I = 0; I < SerialRes.size(); ++I) {
    SCOPED_TRACE(SerialRes[I].Program);
    EXPECT_TRUE(SerialRes[I].Ok) << SerialRes[I].Error;
    EXPECT_EQ(SerialRes[I].Fingerprints, ParRes[I].Fingerprints);
  }
}

TEST(CorpusSchedulerTest, RepeatedRunsAreDeterministic) {
  // Depth-k historically varied run to run (pointer-hashed dependent sets
  // drove the fixpoint order); the fingerprints must now be stable.
  auto Jobs = CorpusScheduler::kindJobs(CorpusJobKind::DepthK);
  Jobs.resize(3); // cs, disj, gabriel — enough to catch order drift.
  CorpusScheduler::Options O;
  O.Jobs = 2;
  CorpusScheduler A(O), B(O);
  auto RA = A.run(Jobs);
  auto RB = B.run(Jobs);
  ASSERT_EQ(RA.size(), RB.size());
  for (size_t I = 0; I < RA.size(); ++I) {
    SCOPED_TRACE(RA[I].Program);
    EXPECT_EQ(RA[I].Fingerprints, RB[I].Fingerprints);
  }
}

TEST(CorpusSchedulerTest, ShardedObservabilityMergesAndStitches) {
  auto Jobs = CorpusScheduler::kindJobs(CorpusJobKind::Groundness);
  Jobs.resize(4);
  CorpusScheduler::Options O;
  O.Jobs = 2;
  O.CollectObservability = true;
  CorpusScheduler Sched(O);
  auto Res = Sched.run(Jobs);
  for (const CorpusJobResult &R : Res)
    EXPECT_TRUE(R.Ok) << R.Error;

  // Merged metrics carry per-predicate rows from all shards.
  const MetricsRegistry &M = Sched.mergedMetrics();
  std::string Json;
  JsonWriter W(Json);
  M.writeJson(W);
  EXPECT_NE(Json.find("predicates"), std::string::npos);

  // The stitched Chrome trace has one tid lane per worker and uses the
  // static program names as span labels.
  std::string Trace = Sched.chromeTrace();
  EXPECT_NE(Trace.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(Trace.find("\"tid\":2"), std::string::npos);
  size_t Named = 0;
  for (const CorpusJobResult &R : Res)
    Named += Trace.find(R.Program) != std::string::npos;
  EXPECT_EQ(Named, Res.size());
}

TEST(MetricsMergeTest, CountersAndPredicatesAccumulate) {
  SymbolTable SymsA, SymsB;
  MetricsRegistry A, B;
  // Same predicate name in two registries with DIFFERENT SymbolIds: the
  // merge must match by name+arity, never by id.
  (void)SymsA.intern("only_in_a");
  SymbolId PA = SymsA.intern("p");
  SymbolId PB = SymsB.intern("p");
  A.pred(SymsA, PA, 2).NewSubgoals = 3;
  B.pred(SymsB, PB, 2).NewSubgoals = 4;
  B.pred(SymsB, SymsB.intern("q"), 1).NewAnswers = 7;
  A.setCounter("work", 10);
  B.setCounter("work", 5);
  B.addPhase("eval", 1.5);

  A.mergeFrom(B);
  EXPECT_EQ(A.pred(SymsA, PA, 2).NewSubgoals, 7u);
  // q/1 arrived under a synthetic key; its row survives with its name.
  std::string Json;
  JsonWriter W(Json);
  A.writeJson(W);
  EXPECT_NE(Json.find("\"q\""), std::string::npos);
  EXPECT_NE(Json.find("\"new_answers\":7"), std::string::npos);
  // Counters accumulate across shards (fleet-wide totals).
  EXPECT_NE(Json.find("\"work\":15"), std::string::npos);
  EXPECT_NE(Json.find("\"eval\""), std::string::npos);
}

TEST(MetricsMergeTest, MergingSameRegistryTwiceAccumulatesExactly) {
  // Regression: a worker registry merged twice (re-run, retry, or a caller
  // folding the same shard into two aggregates) must accumulate counters
  // exactly ×2 without duplicating predicate rows — including predicates
  // that land under synthetic keys on the FIRST merge, whose synthetic key
  // must be found again by name on the second.
  SymbolTable SymsW;
  MetricsRegistry Worker, Total;
  PredMetrics &PM = Worker.pred(SymsW, SymsW.intern("p"), 2);
  PM.Calls = 3;
  PM.NewAnswers = 5;
  PM.AnswersPerSubgoal.record(4);
  Worker.addPhase("evaluate", 0.25);
  Worker.setCounter("rounds", 6);

  Total.mergeFrom(Worker);
  Total.mergeFrom(Worker);

  // One row, not two.
  auto Preds = Total.predicates();
  ASSERT_EQ(Preds.size(), 1u);
  EXPECT_EQ(Preds[0]->qualifiedName(), "p/2");
  EXPECT_EQ(Preds[0]->Calls, 6u);
  EXPECT_EQ(Preds[0]->NewAnswers, 10u);
  EXPECT_EQ(Preds[0]->AnswersPerSubgoal.count(), 2u);

  // Phases and named counters accumulate exactly ×2.
  ASSERT_EQ(Total.phases().size(), 1u);
  EXPECT_DOUBLE_EQ(Total.phases()[0].second, 0.5);
  ASSERT_EQ(Total.counters().size(), 1u);
  EXPECT_EQ(Total.counters()[0].second, 12u);
}

TEST(MetricsMergeTest, MergeIntoEmptyEqualsCopy) {
  SymbolTable Syms;
  MetricsRegistry A, B;
  B.pred(Syms, Syms.intern("r"), 3).TableBytes = 128;
  B.setCounter("incomplete_tables", 2);
  A.mergeFrom(B);
  std::string JA, JB;
  JsonWriter WA(JA), WB(JB);
  A.writeJson(WA);
  B.writeJson(WB);
  EXPECT_NE(JA.find("\"r\""), std::string::npos);
  EXPECT_NE(JA.find("\"incomplete_tables\":2"), std::string::npos);
  EXPECT_NE(JA.find("\"table_bytes\":128"), std::string::npos);
}

TEST(TraceStitchTest, ThreadsGetDistinctTidLanes) {
  Tracer T1, T2;
  RecordingSink S1, S2;
  T1.setSink(&S1);
  T2.setSink(&S2);
  T1.beginSpan("alpha");
  T1.endSpan("alpha");
  T2.beginSpan("beta");
  T2.endSpan("beta");
  std::vector<ThreadTrace> Threads;
  Threads.push_back({1, S1.events()});
  Threads.push_back({2, S2.events()});
  std::string Json = formatChromeTraceThreads(Threads, /*Symbols=*/nullptr);
  EXPECT_NE(Json.find("alpha"), std::string::npos);
  EXPECT_NE(Json.find("beta"), std::string::npos);
  EXPECT_NE(Json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"tid\":2"), std::string::npos);
}

} // namespace
