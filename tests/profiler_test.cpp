//===- profiler_test.cpp - Sampling profiler tests ----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Covers the sampling profiler end to end: EvalCursor seqlock semantics
// (including a concurrent writer/reader stress that TSan audits in CI),
// SampleProfile aggregation and folded-stack export, the Sampler thread
// over a live Solver, table-space watermarks, the fleet's per-worker lanes
// with serial-vs-parallel bit-identity under sampling, and the null-cost
// disabled path.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Sampler.h"
#include "par/CorpusScheduler.h"
#include "reader/Parser.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

using namespace lpa;

namespace {

//===----------------------------------------------------------------------===//
// EvalCursor
//===----------------------------------------------------------------------===//

TEST(EvalCursor, PublishAndRead) {
  EvalCursor C;
  EvalCursor::Snapshot S;
  ASSERT_TRUE(C.read(S));
  EXPECT_EQ(S.Phase, EvalPhase::Idle);
  EXPECT_EQ(S.Depth, 0u);

  C.pushFrame(/*Sym=*/7, /*Arity=*/2);
  C.pushFrame(/*Sym=*/9, /*Arity=*/1);
  C.setGauges(1234, 5, 3);
  ASSERT_TRUE(C.read(S));
  EXPECT_EQ(S.Phase, EvalPhase::Resolve); // pushFrame implies Resolve.
  EXPECT_EQ(S.Depth, 2u);
  EXPECT_EQ(S.frameCount(), 2u);
  EXPECT_EQ(S.Frames[0], (uint64_t(7) << 32) | 2);
  EXPECT_EQ(S.Frames[1], (uint64_t(9) << 32) | 1);
  EXPECT_EQ(S.TableBytes, 1234u);
  EXPECT_EQ(S.Answers, 5u);
  EXPECT_EQ(S.Subgoals, 3u);

  C.setPhase(EvalPhase::Answer);
  ASSERT_TRUE(C.read(S));
  EXPECT_EQ(S.Phase, EvalPhase::Answer);

  C.popFrame();
  C.popFrame();
  ASSERT_TRUE(C.read(S));
  EXPECT_EQ(S.Depth, 0u);
}

TEST(EvalCursor, DeepStackTruncatesWindowButKeepsDepth) {
  EvalCursor C;
  const uint32_t Deep = EvalCursor::MaxFrames + 8;
  for (uint32_t I = 0; I < Deep; ++I)
    C.pushFrame(I + 1, 1);
  EvalCursor::Snapshot S;
  ASSERT_TRUE(C.read(S));
  EXPECT_EQ(S.Depth, Deep);
  EXPECT_EQ(S.frameCount(), EvalCursor::MaxFrames);
  // The window holds the outermost MaxFrames frames.
  EXPECT_EQ(S.Frames[0] >> 32, 1u);
  EXPECT_EQ(S.Frames[EvalCursor::MaxFrames - 1] >> 32,
            uint64_t(EvalCursor::MaxFrames));
  for (uint32_t I = 0; I < Deep; ++I)
    C.popFrame();
  ASSERT_TRUE(C.read(S));
  EXPECT_EQ(S.Depth, 0u);
}

/// The TSan target: one writer hammering the cursor, one reader snapshotting
/// concurrently. Every successful read must be cross-field consistent —
/// the seqlock's only job — which we check via a depth/frame invariant the
/// writer maintains (frame I always holds sym I+1).
TEST(EvalCursor, ConcurrentReaderSeesConsistentSnapshots) {
  EvalCursor C;
  std::atomic<bool> Stop{false};

  std::thread Writer([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      for (uint32_t I = 0; I < 6; ++I)
        C.pushFrame(I + 1, I);
      C.setGauges(100, 200, 300);
      C.setPhase(EvalPhase::Answer);
      for (uint32_t I = 0; I < 6; ++I)
        C.popFrame();
      C.setPhase(EvalPhase::Idle);
    }
  });

  uint64_t Reads = 0, Torn = 0;
  EvalCursor::Snapshot S;
  while (Reads < 20000) {
    if (!C.read(S)) {
      ++Torn;
      continue;
    }
    ++Reads;
    ASSERT_LE(S.Depth, 6u);
    for (size_t I = 0; I < S.frameCount(); ++I) {
      ASSERT_EQ(S.Frames[I] >> 32, uint64_t(I + 1));
      ASSERT_EQ(S.Frames[I] & 0xFFFFFFFF, uint64_t(I));
    }
  }
  Stop.store(true);
  Writer.join();
  // Torn reads are legal under contention; consistency was asserted above.
  SUCCEED() << Reads << " consistent reads, " << Torn << " torn";
}

//===----------------------------------------------------------------------===//
// SampleProfile aggregation
//===----------------------------------------------------------------------===//

EvalCursor::Snapshot snap(EvalPhase P, std::vector<uint64_t> Frames,
                          uint32_t Depth = 0) {
  EvalCursor::Snapshot S;
  S.Phase = P;
  S.Depth = Depth ? Depth : static_cast<uint32_t>(Frames.size());
  for (size_t I = 0; I < Frames.size() && I < EvalCursor::MaxFrames; ++I)
    S.Frames[I] = Frames[I];
  return S;
}

uint64_t packed(uint32_t Sym, uint32_t Arity) {
  return (uint64_t(Sym) << 32) | Arity;
}

TEST(SampleProfile, AggregatesByLanePathAndPhase) {
  SampleProfile P;
  uint32_t L = P.addLane("main");
  P.recordSample(L, snap(EvalPhase::Resolve, {packed(1, 2)}));
  P.recordSample(L, snap(EvalPhase::Resolve, {packed(1, 2)}));
  P.recordSample(L, snap(EvalPhase::Answer, {packed(1, 2)}));
  P.recordSample(L, snap(EvalPhase::Resolve, {packed(1, 2), packed(3, 0)}));
  P.recordSample(L, snap(EvalPhase::Idle, {})); // depth 0 -> idle stack.
  P.recordTorn(L);

  EXPECT_EQ(P.totalSamples(), 5u);
  EXPECT_EQ(P.idleSamples(), 1u);
  EXPECT_EQ(P.tornSamples(), 1u);
  ASSERT_EQ(P.lanes().size(), 1u);
  EXPECT_EQ(P.lanes()[0].Samples, 5u);
  EXPECT_EQ(P.lanes()[0].Torn, 1u);

  std::vector<const SampleProfile::Stack *> Sorted = P.sortedStacks();
  ASSERT_EQ(Sorted.size(), 4u); // (1/2,resolve) (1/2,answer) (deep) (idle).
  EXPECT_EQ(Sorted[0]->Count, 2u);
  EXPECT_EQ(Sorted[0]->Phase, EvalPhase::Resolve);
  ASSERT_EQ(Sorted[0]->Frames.size(), 1u);
  EXPECT_EQ(Sorted[0]->Frames[0], packed(1, 2));
}

TEST(SampleProfile, GaugeMaximaWidenPerLane) {
  SampleProfile P;
  uint32_t L = P.addLane("w");
  EvalCursor::Snapshot S = snap(EvalPhase::Resolve, {packed(1, 1)});
  S.TableBytes = 100;
  S.Answers = 7;
  S.Subgoals = 2;
  P.recordSample(L, S);
  S.TableBytes = 50; // Lower — must not shrink the maxima.
  S.Answers = 9;
  P.recordSample(L, S);
  EXPECT_EQ(P.lanes()[0].MaxTableBytes, 100u);
  EXPECT_EQ(P.lanes()[0].MaxAnswers, 9u);
  EXPECT_EQ(P.lanes()[0].MaxSubgoals, 2u);
}

TEST(SampleProfile, FoldedFormatIsExact) {
  SymbolTable Syms;
  SymbolId Outer = Syms.intern("outer");
  SymbolId Inner = Syms.intern("inner");

  SampleProfile P;
  uint32_t L = P.addLane("main");
  for (int I = 0; I < 3; ++I)
    P.recordSample(
        L, snap(EvalPhase::Resolve, {packed(Outer, 2), packed(Inner, 0)}));
  P.recordSample(L, snap(EvalPhase::Idle, {}));

  std::string Folded = P.formatFolded(&Syms);
  EXPECT_EQ(Folded, "main;outer/2;inner/0;[resolve] 3\n"
                    "main;[idle] 1\n");
  // Null symbol table: frames degrade to #sym/arity, same shape.
  std::string Raw = P.formatFolded(nullptr);
  EXPECT_EQ(Raw, "main;#" + std::to_string(Outer) + "/2;#" +
                     std::to_string(Inner) + "/0;[resolve] 3\n"
                     "main;[idle] 1\n");
}

TEST(SampleProfile, TruncatedStacksCarryElisionMarker) {
  SampleProfile P;
  uint32_t L = P.addLane("m");
  std::vector<uint64_t> Frames;
  for (uint32_t I = 0; I < EvalCursor::MaxFrames; ++I)
    Frames.push_back(packed(I + 1, 0));
  P.recordSample(L, snap(EvalPhase::Resolve, Frames,
                         /*Depth=*/EvalCursor::MaxFrames + 5));
  std::string Folded = P.formatFolded(nullptr);
  EXPECT_NE(Folded.find(";...;[resolve] 1"), std::string::npos) << Folded;
}

TEST(SampleProfile, MergeSumsCountsAndWidensMaxima) {
  SampleProfile A, B;
  uint32_t AL = A.addLane("w1");
  uint32_t BL = B.addLane("w1");
  uint32_t BL2 = B.addLane("w2");

  EvalCursor::Snapshot S = snap(EvalPhase::Resolve, {packed(1, 1)});
  S.TableBytes = 10;
  A.recordSample(AL, S);
  S.TableBytes = 99;
  B.recordSample(BL, S);
  B.recordSample(BL2, snap(EvalPhase::Idle, {}));
  B.recordTorn(BL2);

  A.mergeFrom(B);
  EXPECT_EQ(A.totalSamples(), 3u);
  EXPECT_EQ(A.tornSamples(), 1u);
  ASSERT_EQ(A.lanes().size(), 2u); // w1 matched by label, w2 appended.
  EXPECT_EQ(A.lanes()[0].Samples, 2u);
  EXPECT_EQ(A.lanes()[0].MaxTableBytes, 99u);
  // The shared stack merged into one entry with the summed count.
  std::vector<const SampleProfile::Stack *> Sorted = A.sortedStacks();
  ASSERT_FALSE(Sorted.empty());
  EXPECT_EQ(Sorted[0]->Count, 2u);
}

TEST(SampleProfile, JsonExportHasTotalsLanesAndStacks) {
  SampleProfile P;
  uint32_t L = P.addLane("main");
  P.recordSample(L, snap(EvalPhase::Resolve, {packed(1, 2)}));
  std::string Out;
  JsonWriter W(Out);
  P.writeJson(W, nullptr);
  EXPECT_NE(Out.find("\"total_samples\":1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"label\":\"main\""), std::string::npos);
  EXPECT_NE(Out.find("\"phase\":\"resolve\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sampler over a live Solver
//===----------------------------------------------------------------------===//

/// A right-recursive transitive closure large enough to give the sampler
/// something to see at high Hz.
std::string closureProgram(int N) {
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      Prog += "edge(" + std::to_string(I) + ", " + std::to_string(J) + ").\n";
  return Prog;
}

TEST(Sampler, ProfilesALiveSolve) {
  SymbolTable Syms;
  Database DB(Syms);
  { auto R = DB.consult(closureProgram(10)); ASSERT_TRUE(R.hasValue()) << R.getError().str(); }

  EvalCursor Cursor;
  Sampler Prof(Sampler::Options{100000}); // Max rate: samples despite a
                                          // short workload.
  Prof.addLane("main", &Cursor);
  Prof.start();
  size_t Sols = 0;
  for (int Rep = 0; Rep < 20; ++Rep) {
    Solver Engine(DB);
    Engine.setSampleCursor(&Cursor);
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
    ASSERT_TRUE(G.hasValue());
    Sols += Engine.solve(*G, nullptr);
  }
  Prof.stop();
  EXPECT_EQ(Sols, 20u * 100u);

  const SampleProfile &P = Prof.profile();
  EXPECT_GT(P.totalSamples(), 0u);
  ASSERT_EQ(P.lanes().size(), 1u);
  EXPECT_EQ(P.lanes()[0].Label, "main");
  // The gauges were published, so the lane carries table watermarks.
  EXPECT_GT(P.lanes()[0].MaxTableBytes, 0u);
  EXPECT_GT(P.lanes()[0].MaxAnswers, 0u);
  // Folded output renders through the live symbol table.
  std::string Folded = P.formatFolded(&Syms);
  if (P.totalSamples() > P.idleSamples()) {
    EXPECT_NE(Folded.find("path/2"), std::string::npos) << Folded;
  }
}

TEST(Sampler, StopIsIdempotentAndRestartable) {
  EvalCursor C;
  Sampler Prof(Sampler::Options{1000});
  Prof.addLane("a", &C);
  Prof.start();
  EXPECT_TRUE(Prof.running());
  Prof.stop();
  Prof.stop();
  EXPECT_FALSE(Prof.running());
  Prof.start();
  EXPECT_TRUE(Prof.running());
  Prof.stop();
}

TEST(Sampler, CursorNeverAttachedChangesNothing) {
  // The disabled path: two identical solves, one with a cursor attached
  // (nobody sampling), must agree answer for answer with the bare run.
  SymbolTable Syms;
  Database DB(Syms);
  { auto R = DB.consult(closureProgram(6)); ASSERT_TRUE(R.hasValue()) << R.getError().str(); }

  auto Run = [&](EvalCursor *C) {
    Solver Engine(DB);
    if (C)
      Engine.setSampleCursor(C);
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
    size_t Sols = Engine.solve(*G, nullptr);
    return std::pair(Sols, Engine.stats().AnswersRecorded);
  };
  EvalCursor C;
  auto Bare = Run(nullptr);
  auto Cursored = Run(&C);
  EXPECT_EQ(Bare, Cursored);
  // And the cursor returned to depth 0 when the engine finished.
  EvalCursor::Snapshot S;
  ASSERT_TRUE(C.read(S));
  EXPECT_EQ(S.Depth, 0u);
}

//===----------------------------------------------------------------------===//
// Table-space watermarks
//===----------------------------------------------------------------------===//

TEST(Watermarks, SolveFillsAllFourPeaks) {
  SymbolTable Syms;
  Database DB(Syms);
  { auto R = DB.consult(closureProgram(8)); ASSERT_TRUE(R.hasValue()) << R.getError().str(); }
  Solver Engine(DB);
  auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
  ASSERT_TRUE(G.hasValue());
  EXPECT_EQ(Engine.solve(*G, nullptr), 64u);

  const TableWatermarks &W = Engine.watermarks();
  EXPECT_GT(W.PeakTermStoreBytes, 0u);
  EXPECT_GT(W.PeakSubgoalAnswerBytes, 0u);
  EXPECT_GT(W.PeakSccFrontierBytes, 0u);
  EXPECT_GT(W.PeakTableSpaceBytes, 0u);
  // The pre-release table-space peak can only exceed the post-completion
  // footprint (frontiers were still live when the peak was taken).
  EXPECT_GE(W.PeakTableSpaceBytes, Engine.tableSpaceBytes());

  // snapshotTableMetrics surfaces the peaks as registry watermarks.
  MetricsRegistry Reg;
  Engine.snapshotTableMetrics(Reg);
  bool SawTableSpace = false;
  for (const auto &[Name, Value] : Reg.watermarks()) {
    if (Name == "peak_table_space_bytes") {
      SawTableSpace = true;
      EXPECT_EQ(Value, W.PeakTableSpaceBytes);
    }
  }
  EXPECT_TRUE(SawTableSpace);
}

//===----------------------------------------------------------------------===//
// Fleet sampling
//===----------------------------------------------------------------------===//

TEST(FleetSampling, ParallelSampledRunMatchesSerialUnsampled) {
  std::vector<CorpusJob> Jobs =
      CorpusScheduler::kindJobs(CorpusJobKind::Groundness);

  CorpusScheduler::Options SO;
  SO.Jobs = 1;
  CorpusScheduler Serial(SO);
  std::vector<CorpusJobResult> SerialRes = Serial.run(Jobs);
  EXPECT_TRUE(Serial.sampleProfile().empty());

  CorpusScheduler::Options PO;
  PO.Jobs = 4;
  PO.SampleHz = 50000; // High rate so the short corpus still yields samples.
  CorpusScheduler Par(PO);
  std::vector<CorpusJobResult> ParRes = Par.run(Jobs);

  ASSERT_EQ(SerialRes.size(), ParRes.size());
  for (size_t I = 0; I < SerialRes.size(); ++I) {
    EXPECT_EQ(SerialRes[I].Ok, ParRes[I].Ok) << Jobs[I].Program->Name;
    EXPECT_EQ(SerialRes[I].Fingerprints, ParRes[I].Fingerprints)
        << Jobs[I].Program->Name;
  }

  const SampleProfile &P = Par.sampleProfile();
  ASSERT_EQ(P.lanes().size(), 4u);
  EXPECT_EQ(P.lanes()[0].Label, "worker-1");
  EXPECT_EQ(P.lanes()[3].Label, "worker-4");
  EXPECT_GT(P.totalSamples(), 0u);
  // Folded export renders every lane that sampled anything.
  std::string Folded = Par.foldedStacks();
  EXPECT_NE(Folded.find("worker-"), std::string::npos);
}

} // namespace
