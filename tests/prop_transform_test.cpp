//===- prop_transform_test.cpp - Figure 1 transformation tests --------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "prop/PropTransform.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

class PropTransformTest : public ::testing::Test {
protected:
  /// Transforms a program and renders its abstract clauses.
  std::vector<std::string> transform(const char *Source) {
    PropTransformer T(Syms);
    TermStore Dst;
    auto P = T.transformText(Source, Dst);
    EXPECT_TRUE(P.hasValue()) << (P ? "" : P.getError().str());
    std::vector<std::string> Out;
    if (P)
      for (TermRef C : P->Clauses)
        Out.push_back(TermWriter::toString(Syms, Dst, C));
    return Out;
  }

  SymbolTable Syms;
};

TEST_F(PropTransformTest, FactWithGroundArgs) {
  auto C = transform("p(a, 42).");
  ASSERT_EQ(C.size(), 1u);
  // Each ground argument becomes iff(Ai): Ai <-> true.
  EXPECT_EQ(C[0], "gp_p(_A,_B) :- (iff(_A), iff(_B))");
}

TEST_F(PropTransformTest, BareVariableArgsNeedNoIff) {
  auto C = transform("p(X, Y).");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A,_B)");
}

TEST_F(PropTransformTest, SharedVariableLinksArguments) {
  auto C = transform("p(X, X).");
  ASSERT_EQ(C.size(), 1u);
  // Both head args are the same tau variable.
  EXPECT_EQ(C[0], "gp_p(_A,_A)");
}

TEST_F(PropTransformTest, Figure2AppendAbstraction) {
  // Figure 2 of the paper: ap/3 and its abstraction gp_ap/3.
  auto C = transform(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  ASSERT_EQ(C.size(), 2u);
  // Clause 1: [] is ground (iff(X1)); arguments 2 and 3 share one tau(Ys).
  EXPECT_EQ(C[0], "gp_ap(_A,_B,_B) :- iff(_A)");
  // Clause 2: iff(A1, TX, TXs), iff(A3, TX, TZs), gp_ap(TXs, TYs, TZs).
  EXPECT_EQ(C[1], "gp_ap(_A,_B,_C) :- (iff(_A,_D,_E), iff(_C,_D,_F), "
                  "gp_ap(_E,_B,_F))");
}

TEST_F(PropTransformTest, ExplicitUnificationDecomposes) {
  auto C = transform("p(X, Y) :- X = f(Y, a).");
  ASSERT_EQ(C.size(), 1u);
  // X = f(Y,a) yields iff(TX, TY) via S[f(Y,a)]TX (the 'a' is ground).
  EXPECT_EQ(C[0], "gp_p(_A,_B) :- (iff(_C,_B), iff(_A,_C))");
}

TEST_F(PropTransformTest, UnificationOfStructsDecomposesPairwise) {
  auto C = transform("p(X, Y) :- f(X, b) = f(a, Y).");
  ASSERT_EQ(C.size(), 1u);
  // Decomposition grounds X (X=a) and Y (Y=b) independently: each pair
  // emits iff(C) for the ground side and iff(Tv, C) linking the variable.
  // The worklist is LIFO, so the (b, Y) pair is processed first.
  EXPECT_EQ(C[0], "gp_p(_A,_B) :- (iff(_C), iff(_B,_C), iff(_D), iff(_A,_D))");
}

TEST_F(PropTransformTest, UnificationClashAbstractsToFail) {
  auto C = transform("p(X) :- a = b.");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A) :- fail");
}

TEST_F(PropTransformTest, ArithmeticGroundsVariables) {
  auto C = transform("p(X, Y) :- X is Y + 1.");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A,_B) :- (iff(_A), iff(_B))");
}

TEST_F(PropTransformTest, ComparisonGroundsVariables) {
  auto C = transform("p(X, Y) :- X < Y.");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A,_B) :- (iff(_A), iff(_B))");
}

TEST_F(PropTransformTest, CutAndTrueDisappear) {
  auto C = transform("p(X) :- !, q(X), true.");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A) :- gp_q(_A)");
}

TEST_F(PropTransformTest, NegationIsTreatedAsTrue) {
  auto C = transform("p(X) :- \\+ q(X).");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A)");
}

TEST_F(PropTransformTest, TypeTestsGroundTheirArgument) {
  auto C = transform("p(X) :- atom(X).");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A) :- iff(_A)");
  auto C2 = transform("p(X) :- var(X).");
  EXPECT_EQ(C2[0], "gp_p(_A)");
}

TEST_F(PropTransformTest, NestedStructuresCollectAllVars) {
  auto C = transform("p(f(X, g(Y, X)), Z).");
  ASSERT_EQ(C.size(), 1u);
  // Vars of arg 1 are {X, Y} in first-occurrence order.
  EXPECT_EQ(C[0], "gp_p(_A,_B) :- iff(_A,_C,_D)");
}

TEST_F(PropTransformTest, BodyCallArgumentsGetOwnIffs) {
  auto C = transform("p(X) :- q(f(X), a).");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0], "gp_p(_A) :- (iff(_B,_A), iff(_C), gp_q(_B,_C))");
}

TEST_F(PropTransformTest, PredicateListIsInDefinitionOrder) {
  PropTransformer T(Syms);
  TermStore Dst;
  auto P = T.transformText("a(1). b(2). a(3). c :- a(X).", Dst);
  ASSERT_TRUE(P.hasValue());
  ASSERT_EQ(P->Predicates.size(), 3u);
  EXPECT_EQ(Syms.name(P->Predicates[0].Sym), "a");
  EXPECT_EQ(Syms.name(P->Predicates[1].Sym), "b");
  EXPECT_EQ(Syms.name(P->Predicates[2].Sym), "c");
}

TEST_F(PropTransformTest, DirectivesAreSkipped) {
  PropTransformer T(Syms);
  TermStore Dst;
  auto P = T.transformText(":- table foo/1.\np(a).", Dst);
  ASSERT_TRUE(P.hasValue());
  EXPECT_EQ(P->Clauses.size(), 1u);
}

TEST_F(PropTransformTest, DisjunctionIsRejected) {
  PropTransformer T(Syms);
  TermStore Dst;
  auto P = T.transformText("p(X) :- (q(X) ; r(X)).", Dst);
  EXPECT_FALSE(P.hasValue());
}

TEST_F(PropTransformTest, ZeroArityPredicates) {
  auto C = transform("main :- go. go.");
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C[0], "gp_main :- gp_go");
  EXPECT_EQ(C[1], "gp_go");
}

} // namespace
