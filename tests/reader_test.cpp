//===- reader_test.cpp - Lexer / parser unit tests --------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "reader/Lexer.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

std::string roundTrip(const char *Text) {
  SymbolTable Syms;
  TermStore S;
  auto T = Parser::parseTerm(Syms, S, Text);
  if (!T)
    return "<error: " + T.getError().str() + ">";
  return TermWriter::toString(Syms, S, *T);
}

TEST(Lexer, BasicTokens) {
  Lexer L("foo Bar 42 [X|Xs] % comment\n :- 'quoted atom'");
  EXPECT_EQ(L.next().Kind, TokenKind::Atom);
  EXPECT_EQ(L.next().Kind, TokenKind::Var);
  Token I = L.next();
  EXPECT_EQ(I.Kind, TokenKind::Int);
  EXPECT_EQ(I.IntValue, 42);
  EXPECT_EQ(L.next().Kind, TokenKind::LBracket);
  EXPECT_EQ(L.next().Kind, TokenKind::Var);
  EXPECT_EQ(L.next().Kind, TokenKind::Bar);
  EXPECT_EQ(L.next().Kind, TokenKind::Var);
  EXPECT_EQ(L.next().Kind, TokenKind::RBracket);
  Token Neck = L.next();
  EXPECT_EQ(Neck.Kind, TokenKind::Atom);
  EXPECT_EQ(Neck.Text, ":-");
  Token Q = L.next();
  EXPECT_EQ(Q.Kind, TokenKind::Atom);
  EXPECT_EQ(Q.Text, "quoted atom");
  EXPECT_EQ(L.next().Kind, TokenKind::EndOfFile);
}

TEST(Lexer, EndTokenRequiresLayoutAfterDot) {
  // "foo." at EOF terminates; "=.." is one symbolic atom.
  Lexer L1("foo.");
  EXPECT_EQ(L1.next().Kind, TokenKind::Atom);
  EXPECT_EQ(L1.next().Kind, TokenKind::End);

  Lexer L2("X =.. L.");
  EXPECT_EQ(L2.next().Kind, TokenKind::Var);
  Token Univ = L2.next();
  EXPECT_EQ(Univ.Kind, TokenKind::Atom);
  EXPECT_EQ(Univ.Text, "=..");
}

TEST(Lexer, BlockComments) {
  Lexer L("a /* comment with . and :- */ b");
  EXPECT_EQ(L.next().Text, "a");
  Token B = L.next();
  EXPECT_EQ(B.Text, "b");
  EXPECT_TRUE(B.PrecededByLayout);
}

TEST(Lexer, CharCodeLiteral) {
  Lexer L("0'a 0' ");
  Token A = L.next();
  EXPECT_EQ(A.Kind, TokenKind::Int);
  EXPECT_EQ(A.IntValue, 'a');
}

TEST(Lexer, TracksLineNumbers) {
  Lexer L("a\nb\n  c");
  EXPECT_EQ(L.next().Pos.Line, 1u);
  EXPECT_EQ(L.next().Pos.Line, 2u);
  EXPECT_EQ(L.next().Pos.Line, 3u);
}

TEST(Parser, FactsAndStructures) {
  EXPECT_EQ(roundTrip("foo"), "foo");
  EXPECT_EQ(roundTrip("foo(a, B, 3)"), "foo(a,_A,3)");
  EXPECT_EQ(roundTrip("f(g(h(x)))"), "f(g(h(x)))");
}

TEST(Parser, Lists) {
  EXPECT_EQ(roundTrip("[]"), "[]");
  EXPECT_EQ(roundTrip("[1,2,3]"), "[1,2,3]");
  EXPECT_EQ(roundTrip("[H|T]"), "[_A|_B]");
  EXPECT_EQ(roundTrip("[a,b|T]"), "[a,b|_A]");
  EXPECT_EQ(roundTrip("[[1],[2,3]]"), "[[1],[2,3]]");
}

TEST(Parser, ClauseSyntax) {
  EXPECT_EQ(roundTrip("p(X) :- q(X), r(X)"), "p(_A) :- (q(_A), r(_A))");
}

TEST(Parser, OperatorPrecedence) {
  // * binds tighter than +; + is left-associative.
  EXPECT_EQ(roundTrip("X is 1 + 2 * 3"), "is(_A,+(1,*(2,3)))");
  EXPECT_EQ(roundTrip("X is 1 + 2 + 3"), "is(_A,+(+(1,2),3))");
  EXPECT_EQ(roundTrip("X is (1 + 2) * 3"), "is(_A,*(+(1,2),3))");
}

TEST(Parser, ComparisonOperators) {
  EXPECT_EQ(roundTrip("X < Y"), "<(_A,_B)");
  EXPECT_EQ(roundTrip("X =< Y"), "=<(_A,_B)");
  EXPECT_EQ(roundTrip("X \\== Y"), "\\==(_A,_B)");
}

TEST(Parser, NegativeNumbers) {
  EXPECT_EQ(roundTrip("f(-1)"), "f(-1)");
  EXPECT_EQ(roundTrip("X is -1 + 2"), "is(_A,+(-1,2))");
  EXPECT_EQ(roundTrip("X is - Y"), "is(_A,-(_B))");
}

TEST(Parser, AnonymousVariablesAreDistinct) {
  SymbolTable Syms;
  TermStore S;
  auto T = Parser::parseTerm(Syms, S, "f(_, _)");
  ASSERT_TRUE(T.hasValue());
  EXPECT_NE(S.deref(S.arg(*T, 0)), S.deref(S.arg(*T, 1)));
}

TEST(Parser, NamedVariablesShareWithinClause) {
  SymbolTable Syms;
  TermStore S;
  auto T = Parser::parseTerm(Syms, S, "f(X, X)");
  ASSERT_TRUE(T.hasValue());
  EXPECT_EQ(S.deref(S.arg(*T, 0)), S.deref(S.arg(*T, 1)));
}

TEST(Parser, CutAndControl) {
  EXPECT_EQ(roundTrip("p :- a, !, b"), "p :- (a, !, b)");
  EXPECT_EQ(roundTrip("p :- \\+ q"), "p :- \\+(q)");
  EXPECT_EQ(roundTrip("p :- (a ; b)"), "p :- ;(a,b)");
  EXPECT_EQ(roundTrip("p :- (a -> b ; c)"), "p :- ;(->(a,b),c)");
}

TEST(Parser, Strings) {
  EXPECT_EQ(roundTrip("\"ab\""), "[97,98]");
}

TEST(Parser, MultipleClauses) {
  SymbolTable Syms;
  TermStore S;
  auto P = Parser::parseProgram(Syms, S, R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  ASSERT_TRUE(P.hasValue());
  EXPECT_EQ(P->size(), 2u);
}

TEST(Parser, ReportsErrors) {
  SymbolTable Syms;
  TermStore S;
  auto P = Parser::parseProgram(Syms, S, "f(a.\n");
  EXPECT_FALSE(P.hasValue());
  auto P2 = Parser::parseProgram(Syms, S, "f(a))).\n");
  EXPECT_FALSE(P2.hasValue());
}

TEST(Parser, DirectiveSyntax) {
  EXPECT_EQ(roundTrip(":- table ap/3"), ":-(table(/(ap,3)))");
}

TEST(Parser, VariableNameListIsExposed) {
  SymbolTable Syms;
  TermStore S;
  Parser P(Syms, S, "f(X, Y, X).");
  auto T = P.nextClause();
  ASSERT_TRUE(T.hasValue());
  const auto &Vars = P.clauseVars();
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars[0].first, "X");
  EXPECT_EQ(Vars[1].first, "Y");
}

} // namespace
