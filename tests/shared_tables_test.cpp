//===- shared_tables_test.cpp - Shared-table / parallel eval tests --------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The "shr" suite: the concurrent term trie, the cross-worker shared
// table space, and intra-query parallel evaluation (Options::EvalWorkers).
// CI runs it under ThreadSanitizer — the N-thread hammer tests exist to
// give TSan real interleavings, not just to check the final counts.
//
//===----------------------------------------------------------------------===//

#include "table/ConcurrentTrie.h"
#include "table/SharedTables.h"
#include "table/TermTrie.h"
#include "term/TermCopy.h"

#include "engine/Solver.h"
#include "obs/Forest.h"
#include "par/CorpusScheduler.h"
#include "par/ThreadPool.h"
#include "prop/Groundness.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

using namespace lpa;

namespace {

/// mkStruct takes a span; bridge braced argument lists.
TermRef mkS(TermStore &Store, SymbolId S, std::initializer_list<TermRef> A) {
  std::vector<TermRef> Args(A);
  return Store.mkStruct(S, Args);
}

//===----------------------------------------------------------------------===//
// ConcurrentTermTrie
//===----------------------------------------------------------------------===//

/// Serial ground truth: the concurrent trie must agree with TermTrie on
/// hit/miss classification and variant folding — same token encoding,
/// different storage discipline.
TEST(ConcurrentTrieTest, SerialSemanticsMatchTermTrie) {
  SymbolTable Symbols;
  TermStore Store;
  SymbolId F = Symbols.intern("f");
  SymbolId A = Symbols.intern("a");

  // f(a, 1), f(X, Y), f(X, X), f(Y, Z) — the last is a variant of the
  // second and must hit, not insert.
  TermRef V1 = Store.mkVar(), V2 = Store.mkVar(), V3 = Store.mkVar();
  std::vector<TermRef> Keys = {
      mkS(Store, F, {Store.mkAtom(A), Store.mkInt(1)}),
      mkS(Store, F, {V1, V2}),
      mkS(Store, F, {V3, V3}),
      mkS(Store, F, {Store.mkVar(), Store.mkVar()}),
  };

  TermTrie Reference;
  ConcurrentTermTrie Shared;
  for (uint32_t I = 0; I < Keys.size(); ++I) {
    TermTrie::InsertResult R = Reference.insert(Store, Keys[I], I);
    ConcurrentTermTrie::InsertResult C = Shared.insert(Store, Keys[I], I);
    EXPECT_EQ(R.Inserted, C.Inserted) << "key " << I;
    EXPECT_EQ(R.Value, C.Value) << "key " << I;
  }
  EXPECT_EQ(Shared.valueCount(), 3u); // The variant folded.
  for (uint32_t I = 0; I < Keys.size(); ++I)
    EXPECT_EQ(Reference.find(Store, Keys[I]), Shared.find(Store, Keys[I]));
  EXPECT_EQ(Shared.find(Store, Store.mkAtom(A)), ConcurrentTermTrie::NoValue);
}

/// The unique-answer invariant under contention: N threads race to insert
/// the same key set (each from a private store); exactly one Inserted per
/// key, no lost inserts, and every thread agrees on the stored value.
TEST(ConcurrentTrieTest, ConcurrentInsertExactlyOneWinnerPerKey) {
  constexpr size_t NumThreads = 8;
  constexpr uint32_t NumKeys = 500;

  SymbolTable Symbols;
  SymbolId F = Symbols.intern("f"); // Interned before threads spawn: the
  SymbolId A = Symbols.intern("a"); // symbol table is not shared-mutable.

  std::vector<std::atomic<uint32_t>> InsertWins(NumKeys);
  ConcurrentTermTrie Trie;

  std::vector<std::thread> Threads;
  for (size_t T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      // Private store; same ground keys → same canonical token paths.
      TermStore Store;
      for (uint32_t I = 0; I < NumKeys; ++I) {
        TermRef Key =
            mkS(Store, F, {Store.mkInt(int64_t(I)), Store.mkAtom(A)});
        ConcurrentTermTrie::InsertResult R = Trie.insert(Store, Key, I);
        EXPECT_EQ(R.Value, I); // Value is key-determined: no torn result.
        if (R.Inserted)
          InsertWins[I].fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  for (uint32_t I = 0; I < NumKeys; ++I)
    EXPECT_EQ(InsertWins[I].load(), 1u) << "key " << I;
  EXPECT_EQ(Trie.valueCount(), NumKeys);

  TermStore Store;
  for (uint32_t I = 0; I < NumKeys; ++I) {
    TermRef Key =
        mkS(Store, F, {Store.mkInt(int64_t(I)), Store.mkAtom(A)});
    EXPECT_EQ(Trie.find(Store, Key), I);
  }
}

/// Lock-free readers racing a writer: a found value is always the right
/// one (never torn, never a half-built node), and after the writer joins
/// every key is visible.
TEST(ConcurrentTrieTest, FindIsSafeWhileInserting) {
  constexpr uint32_t NumKeys = 400;
  SymbolTable Symbols;
  SymbolId F = Symbols.intern("g");

  ConcurrentTermTrie Trie;
  std::atomic<bool> Done{false};

  std::thread Writer([&] {
    TermStore Store;
    for (uint32_t I = 0; I < NumKeys; ++I)
      Trie.insert(Store, mkS(Store, F, {Store.mkInt(int64_t(I))}), I);
    Done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      TermStore Store;
      std::vector<TermRef> Keys;
      for (uint32_t I = 0; I < NumKeys; ++I)
        Keys.push_back(mkS(Store, F, {Store.mkInt(int64_t(I))}));
      while (!Done.load(std::memory_order_acquire))
        for (uint32_t I = 0; I < NumKeys; ++I) {
          uint32_t V = Trie.find(Store, Keys[I]);
          if (V != ConcurrentTermTrie::NoValue)
            EXPECT_EQ(V, I);
        }
      // Quiescent: everything the writer inserted is visible.
      for (uint32_t I = 0; I < NumKeys; ++I)
        EXPECT_EQ(Trie.find(Store, Keys[I]), I);
    });

  Writer.join();
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Trie.valueCount(), NumKeys);
}

//===----------------------------------------------------------------------===//
// SharedTableSpace
//===----------------------------------------------------------------------===//

/// Claim arbitration: N threads race to claim the same variant; exactly
/// one wins, the rest see InFlight (never a wait), and after the winner
/// publishes everyone reads the same completed table.
TEST(SharedTableSpaceTest, ExactlyOneClaimThenPublishedVisible) {
  constexpr size_t NumThreads = 8;
  SymbolTable Symbols;
  SymbolId P = Symbols.intern("p");

  SharedTableSpace Space;
  std::atomic<uint32_t> ClaimWins{0};
  std::atomic<uint32_t> InFlightSeen{0};

  std::vector<std::thread> Threads;
  for (size_t T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      TermStore Store;
      TermRef Call = mkS(Store, P, {Store.mkVar(), Store.mkVar()});
      SharedTableSpace::Outcome O =
          Space.claim(Store, Call, P, 2, static_cast<uint32_t>(T));
      ASSERT_NE(O.E, nullptr);
      if (O.H == SharedTableSpace::Hit::Claimed) {
        ClaimWins.fetch_add(1);
        auto Table = std::make_unique<SharedTableSpace::PublishedTable>();
        Table->Sym = P;
        Table->Arity = 2;
        Table->NumAnswers = 7;
        Table->Call = copyTerm(Store, Call, Table->Terms);
        Space.publish(*O.E, std::move(Table));
      } else if (O.H == SharedTableSpace::Hit::InFlight) {
        InFlightSeen.fetch_add(1);
        EXPECT_EQ(Space.published(*O.E), nullptr);
      } else {
        const SharedTableSpace::PublishedTable *PT = Space.published(*O.E);
        ASSERT_NE(PT, nullptr);
        EXPECT_EQ(PT->NumAnswers, 7u);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(ClaimWins.load(), 1u);

  // Quiescent re-claim: warm hit with the full table visible.
  TermStore Store;
  TermRef Call = mkS(Store, P, {Store.mkVar(), Store.mkVar()});
  SharedTableSpace::Outcome O = Space.claim(Store, Call, P, 2, 99);
  EXPECT_EQ(O.H, SharedTableSpace::Hit::Published);
  const SharedTableSpace::PublishedTable *PT = Space.published(*O.E);
  ASSERT_NE(PT, nullptr);
  EXPECT_EQ(PT->Sym, P);
  EXPECT_EQ(PT->NumAnswers, 7u);

  SharedTableSpace::Stats S = Space.stats();
  EXPECT_EQ(S.Claims, 1u);
  EXPECT_EQ(S.Publishes, 1u);
  EXPECT_EQ(S.InFlightMisses, InFlightSeen.load());
  EXPECT_GE(S.Lookups, NumThreads + 1);
  EXPECT_GT(S.Shards, 0u);
  EXPECT_EQ(Space.publishedTables().size(), 1u);
}

/// Distinct variants get distinct entries even when hammered from many
/// threads; publishedTables() sees them all.
TEST(SharedTableSpaceTest, DistinctVariantsDistinctEntries) {
  constexpr size_t NumThreads = 6;
  constexpr uint32_t NumVariants = 64;
  SymbolTable Symbols;
  SymbolId P = Symbols.intern("q");

  SharedTableSpace Space(4);
  std::vector<std::atomic<uint32_t>> Wins(NumVariants);

  std::vector<std::thread> Threads;
  for (size_t T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      TermStore Store;
      for (uint32_t I = 0; I < NumVariants; ++I) {
        TermRef Call = mkS(Store, P, {Store.mkInt(int64_t(I)),
                                        Store.mkVar()});
        SharedTableSpace::Outcome O =
            Space.claim(Store, Call, P, 2, static_cast<uint32_t>(T));
        if (O.H == SharedTableSpace::Hit::Claimed) {
          Wins[I].fetch_add(1, std::memory_order_relaxed);
          auto Table = std::make_unique<SharedTableSpace::PublishedTable>();
          Table->Sym = P;
          Table->Arity = 2;
          Table->NumAnswers = I;
          Table->Call = copyTerm(Store, Call, Table->Terms);
          Space.publish(*O.E, std::move(Table));
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  for (uint32_t I = 0; I < NumVariants; ++I)
    EXPECT_EQ(Wins[I].load(), 1u) << "variant " << I;
  EXPECT_EQ(Space.publishedTables().size(), NumVariants);
  EXPECT_EQ(Space.stats().Claims, NumVariants);
  EXPECT_EQ(Space.stats().Publishes, NumVariants);
}

//===----------------------------------------------------------------------===//
// ThreadPool counters (satellite: steal/idle/task stats)
//===----------------------------------------------------------------------===//

TEST(ThreadPoolStatsTest, TaskCountersBalance) {
  ThreadPool Pool(3);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 64; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  ThreadPool::PoolStats S = Pool.stats();
  EXPECT_EQ(Ran.load(), 64);
  EXPECT_EQ(S.Submitted, 64u);
  EXPECT_EQ(S.Executed, 64u);
  EXPECT_EQ(S.Steals, Pool.stealCount());
}

TEST(ThreadPoolStatsTest, InlinePoolCounts) {
  ThreadPool Pool(0);
  Pool.submit([] {});
  Pool.submit([] {});
  ThreadPool::PoolStats S = Pool.stats();
  EXPECT_EQ(S.Submitted, 2u);
  EXPECT_EQ(S.Executed, 2u);
  EXPECT_EQ(S.Steals, 0u);
}

//===----------------------------------------------------------------------===//
// Intra-query parallel evaluation (Options::EvalWorkers)
//===----------------------------------------------------------------------===//

/// K disjoint left-recursive closure chains (same generator family as
/// bench_parallel_eval, smaller).
std::string chainsProgram(size_t K, size_t N) {
  std::string P;
  for (size_t C = 0; C < K; ++C) {
    std::string Pred = "path" + std::to_string(C);
    std::string Edge = "edge" + std::to_string(C);
    P += ":- table " + Pred + "/2.\n";
    P += Pred + "(X, Y) :- " + Pred + "(X, Z), " + Edge + "(Z, Y).\n";
    P += Pred + "(X, Y) :- " + Edge + "(X, Y).\n";
    for (size_t I = 0; I + 1 < N; ++I)
      P += Edge + "(c" + std::to_string(C) + "n" + std::to_string(I) +
           ", c" + std::to_string(C) + "n" + std::to_string(I + 1) + ").\n";
  }
  return P;
}

/// The sorted rendered answer set of every chain's open call — the
/// canonical fingerprint (order-insensitive, so scheduling can't move it).
std::vector<std::string> chainAnswerSets(Solver &Engine, SymbolTable &Symbols,
                                         size_t K, bool Prime) {
  std::vector<TermRef> Calls;
  for (size_t C = 0; C < K; ++C) {
    auto Call = Parser::parseTerm(Symbols, Engine.store(),
                                  "path" + std::to_string(C) + "(X, Y)");
    EXPECT_TRUE(bool(Call));
    Calls.push_back(*Call);
  }
  if (Prime)
    Engine.primeTables(Calls);
  for (TermRef Call : Calls)
    Engine.solve(Call, nullptr);

  std::vector<std::string> Out;
  for (TermRef Call : Calls) {
    const Subgoal *SG = Engine.findSubgoal(Call);
    EXPECT_NE(SG, nullptr);
    std::vector<std::string> Answers;
    TermStore Scratch;
    for (size_t AI = 0, AE = Engine.answerCount(*SG); AI < AE; ++AI) {
      Scratch.clear();
      TermRef Ans = Engine.answerInstance(*SG, AI, Scratch);
      Answers.push_back(TermWriter::toString(Symbols, Scratch, Ans));
    }
    std::sort(Answers.begin(), Answers.end());
    std::string FP;
    for (const std::string &A : Answers)
      FP += A + ";";
    Out.push_back(std::move(FP));
  }
  return Out;
}

TEST(ParallelEvalTest, ChainsIdenticalToSerial) {
  constexpr size_t K = 4, N = 25;
  std::string Program = chainsProgram(K, N);

  auto Run = [&](size_t Workers) {
    SymbolTable Symbols;
    Database DB(Symbols);
    auto L = DB.consult(Program);
    EXPECT_TRUE(bool(L));
    Solver::Options O;
    O.EvalWorkers = Workers;
    Solver Engine(DB, O);
    auto Sets = chainAnswerSets(Engine, Symbols, K, Workers > 1);
    if (Workers > 1) {
      EXPECT_EQ(Engine.stats().ParallelPrimeRuns, 1u);
      EXPECT_EQ(Engine.sharedTableStats().Publishes, K);
      EXPECT_EQ(Engine.stats().SharedTablesImported, K);
      EXPECT_EQ(Engine.evalPoolStats().Executed, K);
      // Workers did the deriving; the lead only imported and re-walked.
      EXPECT_GT(Engine.parallelWorkerStats().AnswersRecorded, 0u);
    }
    return Sets;
  };

  std::vector<std::string> Serial = Run(0);
  ASSERT_EQ(Serial.size(), K);
  // Each chain has N*(N+1)/2 path answers.
  EXPECT_EQ(std::count(Serial[0].begin(), Serial[0].end(), ';'),
            long(N * (N - 1) / 2));
  EXPECT_EQ(Run(2), Serial);
  EXPECT_EQ(Run(4), Serial);
}

/// The solve() hook: a conjunction of two independent tabled goals primes
/// in parallel before the serial cross-product enumeration.
TEST(ParallelEvalTest, SolveAutoPrimesConjunctions) {
  std::string Program = chainsProgram(2, 8);
  SymbolTable Symbols;
  Database DB(Symbols);
  ASSERT_TRUE(bool(DB.consult(Program)));
  Solver::Options O;
  O.EvalWorkers = 4;
  Solver Engine(DB, O);

  auto Goal = Parser::parseTerm(Symbols, Engine.store(),
                                "path0(X, Y), path1(A, B)");
  ASSERT_TRUE(bool(Goal));
  size_t Solutions = Engine.solve(*Goal, nullptr);
  // 7-edge chains: 28 path answers each; the conjunction enumerates the
  // cross product.
  EXPECT_EQ(Solutions, 28u * 28u);
  EXPECT_EQ(Engine.stats().ParallelPrimeRuns, 1u);
  EXPECT_EQ(Engine.stats().SharedTablesImported, 2u);
}

TEST(ParallelEvalTest, GroundnessFingerprintsIdenticalToSerial) {
  const CorpusProgram *P = findBenchmark("read");
  ASSERT_NE(P, nullptr);

  auto Run = [&](size_t Workers) {
    SymbolTable Symbols;
    GroundnessAnalyzer::Options GO;
    GO.Engine.EvalWorkers = Workers;
    GroundnessAnalyzer Analyzer(Symbols, GO);
    auto R = Analyzer.analyze(P->Source);
    EXPECT_TRUE(bool(R)) << (R ? "" : R.getError().str());
    return R ? fingerprintGroundness(*R) : std::vector<std::string>{};
  };

  std::vector<std::string> Serial = Run(0);
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(Run(4), Serial);
}

/// Poison crosses worker boundaries: a depth-truncated table published by
/// a worker taints the lead exactly as a local truncation would, and the
/// incompleteness count matches the serial run's.
TEST(ParallelEvalTest, DepthLimitPoisonPropagatesAcrossWorkers) {
  // K tabled reach/1 cones over non-tabled step/2 walks: the walk deepens
  // one frame per edge, so MaxDepth prunes the far end of each chain
  // inside whichever worker evaluates it (same shape as the
  // incompleteness suite's ChainProgram, replicated per seed).
  constexpr size_t K = 3, N = 20;
  std::string Program;
  for (size_t C = 0; C < K; ++C) {
    std::string Reach = "reach" + std::to_string(C);
    std::string Step = "step" + std::to_string(C);
    std::string Edge = "edge" + std::to_string(C);
    Program += ":- table " + Reach + "/1.\n";
    Program += Reach + "(X) :- " + Step + "(c" + std::to_string(C) +
               "n0, X).\n";
    Program += Step + "(X, X).\n";
    Program += Step + "(X, Y) :- " + Edge + "(X, Z), " + Step + "(Z, Y).\n";
    for (size_t I = 0; I + 1 < N; ++I)
      Program += Edge + "(c" + std::to_string(C) + "n" + std::to_string(I) +
                 ", c" + std::to_string(C) + "n" + std::to_string(I + 1) +
                 ").\n";
  }

  auto IncompleteCount = [&](size_t Workers) {
    SymbolTable Symbols;
    Database DB(Symbols);
    EXPECT_TRUE(bool(DB.consult(Program)));
    Solver::Options O;
    O.EvalWorkers = Workers;
    O.MaxDepth = 8; // Prunes the 19-edge walks mid-chain.
    Solver Engine(DB, O);
    std::vector<TermRef> Calls;
    for (size_t C = 0; C < K; ++C) {
      auto Call = Parser::parseTerm(Symbols, Engine.store(),
                                    "reach" + std::to_string(C) + "(X)");
      EXPECT_TRUE(bool(Call));
      Calls.push_back(*Call);
    }
    if (Workers > 1)
      Engine.primeTables(Calls);
    for (TermRef Call : Calls)
      Engine.solve(Call, nullptr);
    return Engine.stats().IncompleteTables;
  };

  uint64_t Serial = IncompleteCount(0);
  ASSERT_GT(Serial, 0u) << "depth limit must actually truncate";
  EXPECT_EQ(IncompleteCount(4), Serial);
}

/// Provenance recording forces the serial path: asking for workers must
/// not silently drop justifications (no parallel prime runs, arenas
/// intact).
TEST(ParallelEvalTest, ProvenanceForcesSerial) {
  std::string Program = chainsProgram(2, 10);
  SymbolTable Symbols;
  Database DB(Symbols);
  ASSERT_TRUE(bool(DB.consult(Program)));
  Solver::Options O;
  O.EvalWorkers = 4;
  O.RecordProvenance = true;
  Solver Engine(DB, O);
  auto Goal = Parser::parseTerm(Symbols, Engine.store(), "path0(X, Y)");
  ASSERT_TRUE(bool(Goal));
  Engine.solve(*Goal, nullptr);
  EXPECT_EQ(Engine.stats().ParallelPrimeRuns, 0u);
  ProvenanceArena::CheckStats CS = Engine.checkProvenance();
  EXPECT_GT(CS.Justified, 0u);
  EXPECT_EQ(CS.Dangling, 0u);
}

//===----------------------------------------------------------------------===//
// Forest SCC summaries (satellite: one SCC computation for exports and
// scheduler)
//===----------------------------------------------------------------------===//

TEST(ForestSccTest, SummariesTagExports) {
  SymbolTable Symbols;
  Database DB(Symbols);
  ASSERT_TRUE(bool(DB.consult(":- table p/1.\n"
                              ":- table q/1.\n"
                              "p(X) :- q(X).\n"
                              "q(X) :- p(X).\n"
                              "q(1).\n")));
  Solver Engine(DB);
  auto Goal = Parser::parseTerm(Symbols, Engine.store(), "p(X)");
  ASSERT_TRUE(bool(Goal));
  Engine.solve(*Goal, nullptr);

  ForestGraph G = Engine.exportForest();
  std::vector<SccSummary> Sccs = computeSccSummaries(G);
  ASSERT_FALSE(Sccs.empty());
  // p and q are mutually recursive: one SCC holds both.
  EXPECT_EQ(Sccs[0].Members.size(), 2u);
  EXPECT_GT(Sccs[0].CompletionOrder, 0u);
  EXPECT_FALSE(Sccs[0].Incomplete);

  std::string Json = forestToJson(G);
  EXPECT_NE(Json.find("\"sccs\""), std::string::npos);
  EXPECT_NE(Json.find("\"completion_order\""), std::string::npos);
  std::string Dot = forestToDot(G);
  EXPECT_NE(Dot.find("// scc "), std::string::npos);
}

} // namespace
