//===- srv_test.cpp - Analysis service layer tests ----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Covers the long-lived-service contract: one Solver reused across
// sequential queries with warm/cold table accounting, query-scoped trace
// and metrics attribution (QueryContext), deadline truncation with the
// same poisoning discipline as the depth limit, resetStats() semantics on
// a warm engine, ServiceStats ring/quantile math, and the JSON-lines
// protocol round-trip through AnalysisSession.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "obs/Trace.h"
#include "reader/Parser.h"
#include "srv/Protocol.h"
#include "srv/ServiceStats.h"
#include "srv/Session.h"
#include "support/JsonValue.h"

#include <gtest/gtest.h>

#include <string>

using namespace lpa;

namespace {

const char *PathProgram = "  :- table path/2.\n"
                          "  path(X, Y) :- edge(X, Y).\n"
                          "  path(X, Y) :- edge(X, Z), path(Z, Y).\n"
                          "  edge(a, b). edge(b, c). edge(c, d).\n";

size_t solveText(SymbolTable &Syms, Solver &S, const char *GoalText) {
  auto Goal = Parser::parseTerm(Syms, S.store(), GoalText);
  EXPECT_TRUE(Goal.hasValue());
  return S.solve(*Goal, nullptr);
}

//===----------------------------------------------------------------------===//
// Warm/cold table accounting across sequential queries
//===----------------------------------------------------------------------===//

TEST(WarmCold, RepeatedQueryHitsWarmTables) {
  for (bool UseTrieTables : {true, false}) {
    SCOPED_TRACE(UseTrieTables ? "trie" : "string");
    SymbolTable Syms;
    Database DB(Syms);
    ASSERT_TRUE(DB.consult(PathProgram).hasValue());
    Solver::Options Opts;
    Opts.UseTrieTables = UseTrieTables;
    Solver S(DB, Opts);

    // Cold query: every subgoal is created fresh. No query context is
    // attached — the solver's internal sequence must scope queries on
    // its own.
    EXPECT_EQ(solveText(Syms, S, "path(a, X)"), 3u);
    EXPECT_EQ(S.stats().WarmTableHits, 0u);
    EXPECT_GT(S.stats().ColdTableMisses, 0u);
    uint64_t Cold = S.stats().ColdTableMisses;
    uint64_t Subgoals = S.stats().SubgoalsCreated;

    // Warm re-query: answered entirely from tables completed by query 1 —
    // warm hit, no new subgoals, no new cold misses.
    EXPECT_EQ(solveText(Syms, S, "path(a, X)"), 3u);
    EXPECT_GT(S.stats().WarmTableHits, 0u);
    EXPECT_EQ(S.stats().ColdTableMisses, Cold);
    EXPECT_EQ(S.stats().SubgoalsCreated, Subgoals);
  }
}

TEST(WarmCold, SameQueryRehitsAreNeitherWarmNorCold) {
  // Both conjuncts call path(a, _): the second call finds a table
  // completed *within the same query*, which is memoization, not
  // cross-query reuse — it must not inflate the warm rate.
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  ASSERT_TRUE(DB.consult("both(X, Y) :- path(a, X), path(a, Y).")
                  .hasValue());
  Solver S(DB);
  EXPECT_EQ(solveText(Syms, S, "both(X, Y)"), 9u);
  EXPECT_EQ(S.stats().WarmTableHits, 0u);
  EXPECT_GT(S.stats().ColdTableMisses, 0u);
}

TEST(WarmCold, PerPredicateMetricsCarryTheSplit) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  Solver S(DB);
  Tracer Trace;
  MetricsRegistry Metrics;
  S.setObservability(&Trace, &Metrics);
  solveText(Syms, S, "path(a, X)");
  solveText(Syms, S, "path(a, X)");
  const PredMetrics &PM = Metrics.pred(Syms, Syms.intern("path"), 2);
  EXPECT_EQ(PM.WarmHits, S.stats().WarmTableHits);
  EXPECT_EQ(PM.ColdMisses, S.stats().ColdTableMisses);
  EXPECT_GT(PM.WarmHits, 0u);
}

TEST(WarmCold, ResetStatsKeepsTablesWarm) {
  // The long-lived-session contract: resetStats() zeroes counters but
  // keeps tables, so the very next repeated query is pure warm traffic
  // (and the id sequence keeps rising — a reset must not make tables
  // completed "in the future" of the new counter).
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  Solver S(DB);
  solveText(Syms, S, "path(a, X)");
  solveText(Syms, S, "path(a, X)");
  EXPECT_GT(S.stats().WarmTableHits, 0u);

  S.resetStats();
  EXPECT_EQ(S.stats().WarmTableHits, 0u);
  EXPECT_EQ(S.stats().ColdTableMisses, 0u);
  EXPECT_EQ(S.stats().SubgoalsCreated, 0u);

  EXPECT_EQ(solveText(Syms, S, "path(a, X)"), 3u);
  EXPECT_GT(S.stats().WarmTableHits, 0u);
  EXPECT_EQ(S.stats().ColdTableMisses, 0u);
  EXPECT_EQ(S.stats().SubgoalsCreated, 0u);
}

//===----------------------------------------------------------------------===//
// QueryContext: id attribution and deadlines
//===----------------------------------------------------------------------===//

TEST(QueryContext, TraceEventsAttributeToTheirQuery) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  Solver S(DB);
  Tracer Trace;
  RecordingSink Sink;
  Trace.setSink(&Sink);
  MetricsRegistry Metrics;
  S.setObservability(&Trace, &Metrics);

  QueryContext Ctx;
  S.setQueryContext(&Ctx);
  Ctx.Id = 101;
  solveText(Syms, S, "path(a, X)");
  Ctx.Id = 202;
  solveText(Syms, S, "path(a, X)");

  size_t First = 0, Second = 0;
  for (const TraceEvent &E : Sink.events()) {
    if (E.QueryId == 101)
      ++First;
    else if (E.QueryId == 202)
      ++Second;
    else
      ADD_FAILURE() << "event with unattributed query id " << E.QueryId;
  }
  EXPECT_GT(First, 0u);  // The cold evaluation.
  EXPECT_GT(Second, 0u); // At least the warm tabled-call event.
}

TEST(QueryContext, CallerIdZeroFallsBackToInternalSequence) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  Solver S(DB);
  QueryContext Ctx; // Id stays 0.
  S.setQueryContext(&Ctx);
  solveText(Syms, S, "path(a, X)");
  uint64_t Q1 = S.currentQueryId();
  EXPECT_GT(Q1, 0u);
  solveText(Syms, S, "path(b, X)");
  EXPECT_GT(S.currentQueryId(), Q1);
}

TEST(QueryContext, ExpiredDeadlineTruncatesAndPoisons) {
  // A chain long enough that the decimated deadline check (every 1024
  // resolution steps) fires mid-evaluation. The deadline is an absolute
  // steady-clock point already in the past, so expiry is deterministic.
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
  const int N = 2000;
  for (int I = 0; I < N; ++I)
    Prog += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 1) +
            ").\n";
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(Prog).hasValue());
  Solver S(DB);
  QueryContext Ctx;
  Ctx.Id = 1;
  Ctx.DeadlineNs = 1; // Long past.
  S.setQueryContext(&Ctx);

  size_t Total = solveText(Syms, S, "path(n0, X)");
  EXPECT_LT(Total, size_t(N)); // The full closure was cut short.
  EXPECT_EQ(S.stats().DeadlineHits, 1u); // Counted once, not per branch.

  // Same soundness discipline as the depth limit: the truncated producer
  // is poisoned so the partial table can never pass for a complete one.
  EXPECT_GE(S.stats().IncompleteTables, 1u);
  bool AnyIncomplete = false;
  for (const Subgoal *SG : S.subgoals())
    AnyIncomplete |= SG->Incomplete;
  EXPECT_TRUE(AnyIncomplete);

  // The expiry is per-query, not sticky across queries: with the deadline
  // cleared the next query runs to completion.
  Ctx.Id = 2;
  Ctx.DeadlineNs = 0;
  EXPECT_EQ(solveText(Syms, S, "path(n1, X)"), size_t(N) - 1);
  EXPECT_EQ(S.stats().DeadlineHits, 1u);
}

TEST(QueryContext, UnreachableDeadlineChangesNothing) {
  SymbolTable Syms;
  Database DB(Syms);
  ASSERT_TRUE(DB.consult(PathProgram).hasValue());
  Solver S(DB);
  QueryContext Ctx;
  Ctx.Id = 1;
  Ctx.DeadlineNs = ~uint64_t(0);
  S.setQueryContext(&Ctx);
  EXPECT_EQ(solveText(Syms, S, "path(a, X)"), 3u);
  EXPECT_EQ(S.stats().DeadlineHits, 0u);
  EXPECT_EQ(S.stats().IncompleteTables, 0u);
}

//===----------------------------------------------------------------------===//
// ServiceStats: bounded rings and quantiles
//===----------------------------------------------------------------------===//

QueryRecord record(uint64_t Id, double WallMs, uint64_t Warm = 0,
                   uint64_t Cold = 0) {
  QueryRecord R;
  R.Id = Id;
  R.Goal = "g" + std::to_string(Id);
  R.WallMs = WallMs;
  R.WarmHits = Warm;
  R.ColdMisses = Cold;
  return R;
}

TEST(ServiceStatsTest, WindowQuantilesAreExactNearestRank) {
  ServiceStats::Options O;
  O.WindowSize = 8;
  ServiceStats S(O);
  // 1ms..8ms -> 1000us..8000us.
  for (uint64_t I = 1; I <= 8; ++I)
    S.recordQuery(record(I, double(I)));
  EXPECT_EQ(S.windowQuantileUs(0.0), 1000u);
  EXPECT_EQ(S.windowQuantileUs(0.50), 4000u);
  EXPECT_EQ(S.windowQuantileUs(0.95), 8000u);
  EXPECT_EQ(S.windowQuantileUs(1.0), 8000u);

  // Two more evict the two oldest: the window is now 3..10ms.
  S.recordQuery(record(9, 9.0));
  S.recordQuery(record(10, 10.0));
  EXPECT_EQ(S.windowCount(), 8u);
  EXPECT_EQ(S.windowQuantileUs(0.0), 3000u);
  EXPECT_EQ(S.windowQuantileUs(1.0), 10000u);

  // The cumulative histogram still covers all ten queries.
  EXPECT_EQ(S.latency().count(), 10u);
  EXPECT_EQ(S.queriesServed(), 10u);
}

TEST(ServiceStatsTest, RecentRingEvictsOldestFirst) {
  ServiceStats::Options O;
  O.RecentSize = 3;
  ServiceStats S(O);
  for (uint64_t I = 1; I <= 5; ++I)
    S.recordQuery(record(I, 1.0));
  std::vector<QueryRecord> R = S.recentQueries();
  ASSERT_EQ(R.size(), 3u);
  EXPECT_EQ(R[0].Id, 3u);
  EXPECT_EQ(R[1].Id, 4u);
  EXPECT_EQ(R[2].Id, 5u);
}

TEST(ServiceStatsTest, GaugeRingKeepsArrivalOrderAcrossWrap) {
  ServiceStats::Options O;
  O.GaugeRingSize = 4;
  ServiceStats S(O);
  for (uint64_t I = 1; I <= 6; ++I)
    S.recordGauges({I, I * 100, I, I});
  std::vector<GaugePoint> G = S.gaugeSeries();
  ASSERT_EQ(G.size(), 4u);
  EXPECT_EQ(G.front().QueryId, 3u);
  EXPECT_EQ(G.back().QueryId, 6u);
  EXPECT_EQ(G.back().TableBytes, 600u);
}

TEST(ServiceStatsTest, WarmHitRateAndReset) {
  ServiceStats S;
  EXPECT_DOUBLE_EQ(S.warmHitRate(), 0.0); // No lookups yet: defined as 0.
  S.recordQuery(record(1, 1.0, /*Warm=*/0, /*Cold=*/4));
  S.recordQuery(record(2, 1.0, /*Warm=*/1, /*Cold=*/0));
  EXPECT_DOUBLE_EQ(S.warmHitRate(), 0.2);
  EXPECT_EQ(S.warmHits(), 1u);
  EXPECT_EQ(S.coldMisses(), 4u);

  S.reset();
  EXPECT_EQ(S.queriesServed(), 0u);
  EXPECT_EQ(S.warmHits(), 0u);
  EXPECT_EQ(S.windowCount(), 0u);
  EXPECT_TRUE(S.recentQueries().empty());
  EXPECT_TRUE(S.gaugeSeries().empty());
}

//===----------------------------------------------------------------------===//
// AnalysisSession
//===----------------------------------------------------------------------===//

TEST(SessionTest, QueriesCarrySequentialIdsAndWarmDeltas) {
  AnalysisSession Session;
  auto Loaded = Session.consult(PathProgram);
  ASSERT_TRUE(Loaded.hasValue());
  EXPECT_EQ(Loaded->Loaded, 5u);

  auto Q1 = Session.runQuery("path(a, X)");
  ASSERT_TRUE(Q1.hasValue());
  EXPECT_EQ(Q1->Id, 1u);
  EXPECT_EQ(Q1->Total, 3u);
  EXPECT_EQ(Q1->Solutions.size(), 3u);
  EXPECT_EQ(Q1->WarmHits, 0u);
  EXPECT_GT(Q1->ColdMisses, 0u);
  EXPECT_FALSE(Q1->Truncated);

  auto Q2 = Session.runQuery("path(a, X)");
  ASSERT_TRUE(Q2.hasValue());
  EXPECT_EQ(Q2->Id, 2u);
  EXPECT_GT(Q2->WarmHits, 0u);
  EXPECT_EQ(Q2->ColdMisses, 0u);

  EXPECT_EQ(Session.queriesServed(), 2u);
  EXPECT_NE(Session.warmColdLine().find("warm"), std::string::npos);
  EXPECT_FALSE(Session.queriesReport().empty());
}

TEST(SessionTest, MaxSolutionsBoundsRenderingNotCounting) {
  AnalysisSession Session;
  ASSERT_TRUE(Session.consult(PathProgram).hasValue());
  auto Q = Session.runQuery("path(X, Y)", /*MaxSolutions=*/2);
  ASSERT_TRUE(Q.hasValue());
  EXPECT_EQ(Q->Total, 6u);
  EXPECT_EQ(Q->Solutions.size(), 2u);
}

TEST(SessionTest, ParseErrorsAreDiagnosticsNotQueries) {
  AnalysisSession Session;
  ASSERT_TRUE(Session.consult(PathProgram).hasValue());
  auto Bad = Session.runQuery("path(a,");
  EXPECT_FALSE(Bad.hasValue());
  EXPECT_EQ(Session.queriesServed(), 0u); // Never reached the engine.
}

TEST(SessionTest, ResetStatsKeepsSessionTablesWarm) {
  AnalysisSession Session;
  ASSERT_TRUE(Session.consult(PathProgram).hasValue());
  ASSERT_TRUE(Session.runQuery("path(a, X)").hasValue());
  Session.resetStats();
  EXPECT_EQ(Session.queriesServed(), 0u);

  // Post-reset, the tables built before the reset still answer warm.
  auto Q = Session.runQuery("path(a, X)");
  ASSERT_TRUE(Q.hasValue());
  EXPECT_GT(Q->WarmHits, 0u);
  EXPECT_EQ(Q->ColdMisses, 0u);
}

TEST(SessionTest, StatsAndHealthSnapshotsParseWithStableSchema) {
  AnalysisSession Session;
  ASSERT_TRUE(Session.consult(PathProgram).hasValue());
  ASSERT_TRUE(Session.runQuery("path(a, X)").hasValue());
  ASSERT_TRUE(Session.runQuery("path(a, X)").hasValue());

  auto Stats = JsonValue::parse(Session.statsJson());
  ASSERT_TRUE(Stats.hasValue()) << Stats.getError().str();
  EXPECT_EQ(Stats->stringOr("schema", ""), "lpa.stats.v1");
  EXPECT_DOUBLE_EQ(Stats->numberOr("queries_served", 0), 2.0);
  EXPECT_GT(Stats->numberOr("warm_hits", 0), 0.0);
  const JsonValue *Latency = Stats->find("latency");
  ASSERT_TRUE(Latency && Latency->isObject());
  for (const char *Key : {"p50_us", "p95_us", "p99_us", "count"})
    EXPECT_TRUE(Latency->find(Key)) << "latency missing " << Key;
  const JsonValue *Recent = Stats->find("recent_queries");
  ASSERT_TRUE(Recent && Recent->isArray());
  EXPECT_EQ(Recent->items().size(), 2u);
  const JsonValue *Engine = Stats->find("engine");
  ASSERT_TRUE(Engine && Engine->isObject());
  const JsonValue *Counters = Engine->find("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  EXPECT_GT(Counters->numberOr("warm_table_hits", 0), 0.0);
  const JsonValue *Gauges = Stats->find("gauges");
  ASSERT_TRUE(Gauges && Gauges->isArray());
  EXPECT_EQ(Gauges->items().size(), 2u);

  auto Health = JsonValue::parse(Session.healthJson());
  ASSERT_TRUE(Health.hasValue());
  EXPECT_EQ(Health->stringOr("schema", ""), "lpa.health.v1");
  EXPECT_TRUE(Health->find("ok")->asBool());
  EXPECT_DOUBLE_EQ(Health->numberOr("clauses", 0), 5.0);
  EXPECT_GT(Health->numberOr("subgoals", 0), 0.0);
}

//===----------------------------------------------------------------------===//
// JSON-lines protocol
//===----------------------------------------------------------------------===//

JsonValue respond(AnalysisSession &Session, const std::string &Line,
                  bool *Shutdown = nullptr) {
  bool Quit = false;
  std::string Resp = handleRequestLine(Session, Line, Quit);
  if (Shutdown)
    *Shutdown = Quit;
  auto V = JsonValue::parse(Resp);
  EXPECT_TRUE(V.hasValue()) << "unparsable response: " << Resp;
  return V.hasValue() ? *V : JsonValue();
}

const char *ConsultReq =
    R"j({"op":"consult","program":":- table path/2. edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Y) :- edge(X,Z), path(Z,Y)."})j";

TEST(ProtocolTest, ConsultQueryStatsRoundTrip) {
  AnalysisSession Session;
  JsonValue C = respond(Session, ConsultReq);
  EXPECT_TRUE(C.find("ok")->asBool());
  EXPECT_DOUBLE_EQ(C.numberOr("clauses", 0), 4.0);

  JsonValue Q1 =
      respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  EXPECT_TRUE(Q1.find("ok")->asBool());
  EXPECT_DOUBLE_EQ(Q1.numberOr("id", 0), 1.0);
  EXPECT_DOUBLE_EQ(Q1.numberOr("total", 0), 2.0);
  ASSERT_TRUE(Q1.find("solutions"));
  EXPECT_EQ(Q1.find("solutions")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(Q1.numberOr("warm_hits", -1), 0.0);

  JsonValue Q2 =
      respond(Session, R"j({"op":"query","goal":"path(a,X)"})j");
  EXPECT_DOUBLE_EQ(Q2.numberOr("id", 0), 2.0);
  EXPECT_GT(Q2.numberOr("warm_hits", 0), 0.0);
  EXPECT_DOUBLE_EQ(Q2.numberOr("cold_misses", -1), 0.0);

  JsonValue St = respond(Session, R"j({"op":"stats"})j");
  EXPECT_TRUE(St.find("ok")->asBool());
  const JsonValue *Stats = St.find("stats");
  ASSERT_TRUE(Stats && Stats->isObject());
  EXPECT_EQ(Stats->stringOr("schema", ""), "lpa.stats.v1");
  EXPECT_GT(Stats->numberOr("warm_hits", 0), 0.0);

  JsonValue H = respond(Session, R"j({"op":"health"})j");
  const JsonValue *Health = H.find("health");
  ASSERT_TRUE(Health && Health->isObject());
  EXPECT_EQ(Health->stringOr("schema", ""), "lpa.health.v1");
}

TEST(ProtocolTest, MaxSolutionsAndDeadlineArePlumbed) {
  AnalysisSession Session;
  respond(Session, ConsultReq);
  JsonValue Q = respond(
      Session,
      R"j({"op":"query","goal":"path(X,Y)","max_solutions":1,"deadline_ms":60000})j");
  EXPECT_DOUBLE_EQ(Q.numberOr("total", 0), 3.0);
  EXPECT_EQ(Q.find("solutions")->items().size(), 1u);
  ASSERT_TRUE(Q.find("truncated"));
  EXPECT_FALSE(Q.find("truncated")->asBool());
}

TEST(ProtocolTest, ResetStatsAndShutdownVerbs) {
  AnalysisSession Session;
  respond(Session, R"j({"op":"consult","program":"edge(a,b)."})j");
  respond(Session, R"j({"op":"query","goal":"edge(a,X)"})j");
  EXPECT_EQ(Session.queriesServed(), 1u);

  bool Quit = false;
  JsonValue R = respond(Session, R"j({"op":"reset_stats"})j", &Quit);
  EXPECT_TRUE(R.find("ok")->asBool());
  EXPECT_FALSE(Quit);
  EXPECT_EQ(Session.queriesServed(), 0u);

  JsonValue Bye = respond(Session, R"j({"op":"shutdown"})j", &Quit);
  EXPECT_TRUE(Bye.find("ok")->asBool());
  EXPECT_TRUE(Quit);
}

TEST(ProtocolTest, ErrorsAreResponsesNotDisconnects) {
  AnalysisSession Session;
  bool Quit = false;

  JsonValue NotJson = respond(Session, "this is not json", &Quit);
  ASSERT_TRUE(NotJson.find("ok"));
  EXPECT_FALSE(NotJson.find("ok")->asBool());
  EXPECT_TRUE(NotJson.find("error"));
  EXPECT_FALSE(Quit);

  JsonValue BadOp = respond(Session, R"j({"op":"frobnicate"})j");
  EXPECT_FALSE(BadOp.find("ok")->asBool());

  JsonValue NoGoal = respond(Session, R"j({"op":"query"})j");
  EXPECT_FALSE(NoGoal.find("ok")->asBool());

  JsonValue BadGoal =
      respond(Session, R"j({"op":"query","goal":"path(a,"})j");
  EXPECT_FALSE(BadGoal.find("ok")->asBool());
  EXPECT_TRUE(BadGoal.find("error"));

  // The session survives all of it.
  respond(Session, R"j({"op":"consult","program":"edge(a,b)."})j");
  JsonValue Q = respond(Session, R"j({"op":"query","goal":"edge(a,X)"})j");
  EXPECT_TRUE(Q.find("ok")->asBool());
}

} // namespace
