//===- strict_transform_test.cpp - Figure 3 transformation tests ------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Checks the *form* of the generated demand-propagation clauses against
// Figure 4 of the paper (the end-to-end answer sets are covered by
// strictness_test).
//
//===----------------------------------------------------------------------===//

#include "fl/FLParser.h"
#include "strictness/StrictTransform.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace lpa;

namespace {

class StrictTransformTest : public ::testing::Test {
protected:
  /// Transforms FL source; returns the rendered clauses.
  std::vector<std::string> transform(const char *Source) {
    auto P = FLParser::parse(Source);
    EXPECT_TRUE(P.hasValue()) << (P ? "" : P.getError().str());
    std::vector<std::string> Out;
    if (!P)
      return Out;
    StrictTransformer T(Syms);
    TermStore Dst;
    auto SP = T.transform(*P, Dst);
    EXPECT_TRUE(SP.hasValue());
    if (SP)
      for (TermRef C : SP->Clauses)
        Out.push_back(TermWriter::toString(Syms, Dst, C));
    return Out;
  }

  bool contains(const std::vector<std::string> &Clauses,
                const std::string &Needle) {
    return std::any_of(Clauses.begin(), Clauses.end(),
                       [&](const std::string &C) {
                         return C.find(Needle) != std::string::npos;
                       });
  }

  SymbolTable Syms;
};

TEST_F(StrictTransformTest, Figure4FirstEquation) {
  // ap(nil, ys) = ys  =>  sp_ap(D, X1, D') :- pm_nil(X1)  with D = D'
  // (the rhs variable's demand *is* the head demand, so both head
  // positions share one variable).
  auto C = transform("ap(nil, ys) = ys.\n"
                     "ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).");
  ASSERT_GE(C.size(), 2u);
  EXPECT_EQ(C[0], "sp_ap(_A,_B,_A) :- pm_nil(_B)");
}

TEST_F(StrictTransformTest, Figure4SecondEquation) {
  // Figure 4: sp_ap(D,X1,X2) :- sp_cons(D,D1,D2), sp_ap(D2,Txs,Tys),
  //                             pm_cons(X1,Tx,Txs)  [Tys = X2, Tx = D1
  //                             folded into shared variables].
  auto C = transform("ap(nil, ys) = ys.\n"
                     "ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).");
  ASSERT_GE(C.size(), 2u);
  EXPECT_EQ(C[1], "sp_ap(_A,_B,_C) :- (sp_cons(_A,_D,_E), sp_ap(_E,_F,_C), "
                  "pm_cons(_B,_D,_F))");
}

TEST_F(StrictTransformTest, NonStrictnessClausePerFunction) {
  auto C = transform("id(x) = x. k(x, y) = x.");
  // sp_id(n, _) and sp_k(n, _, _) facts must exist.
  EXPECT_TRUE(contains(C, "sp_id(n,"));
  EXPECT_TRUE(contains(C, "sp_k(n,"));
}

TEST_F(StrictTransformTest, ConstructorSupportClauses) {
  auto C = transform("f(x) = cons(x, nil).");
  // sp_cons(e, e, e): e-demand evaluates both components fully.
  EXPECT_TRUE(contains(C, "sp_cons(e,e,e)"));
  // sp_cons(d, _, _): hnf demand leaves components free.
  EXPECT_TRUE(contains(C, "sp_cons(d,"));
  // pm rows for nil: extent e only.
  EXPECT_TRUE(contains(C, "pm_nil(e)"));
  for (const std::string &Cl : C)
    EXPECT_EQ(Cl.find("pm_nil(d)"), std::string::npos) << Cl;
}

TEST_F(StrictTransformTest, PatternMatchBottomUpRows) {
  auto C = transform("hd(cons(x, xs)) = x.");
  // pm_cons(e, e, e) plus d-rows requiring one sub-extent below e.
  EXPECT_TRUE(contains(C, "pm_cons(e,e,e)"));
  EXPECT_TRUE(contains(C, "pm_cons(d,"));
  EXPECT_TRUE(contains(C, "low("));
  EXPECT_TRUE(contains(C, "dem("));
}

TEST_F(StrictTransformTest, PrimitivesAreFullyStrict) {
  auto C = transform("plus(x, y) = x + y.");
  EXPECT_TRUE(contains(C, "'sp_+'(e,e,e)"));
  EXPECT_TRUE(contains(C, "'sp_+'(d,e,e)"));
  EXPECT_TRUE(contains(C, "'sp_+'(n,"));
}

TEST_F(StrictTransformTest, LiteralPatternsUseLitExtent) {
  auto C = transform("fact(0) = 1. fact(n) = n * fact(n - 1).");
  EXPECT_TRUE(contains(C, "pm_lit(e)"));
  EXPECT_TRUE(contains(C, "pm_lit("));
}

TEST_F(StrictTransformTest, RepeatedRhsVariableEmitsEquality) {
  // dup(x) = pair(x, x): both components demand tau(x); the second
  // occurrence constrains via '='.
  auto C = transform("dup(x) = pair(x, x).");
  ASSERT_FALSE(C.empty());
  EXPECT_NE(C[0].find("="), std::string::npos) << C[0];
}

TEST_F(StrictTransformTest, DemandFlowsThroughNestedApplications) {
  // f(x) = g(h(x)): sp_g gets the head demand, sp_h gets g's argument
  // demand (the paper's function-composition rule).
  auto C = transform("g(x) = x. h(x) = x. f(x) = g(h(x)).");
  bool Found = false;
  for (const std::string &Cl : C)
    if (Cl.find("sp_f") == 0 && Cl.find("sp_g(") != std::string::npos &&
        Cl.find("sp_h(") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(StrictTransformTest, ZeroArityFunctions) {
  auto C = transform("ones = cons(1, ones).");
  // sp_ones(D) :- sp_cons(D, _, D2), sp_ones(D2).
  EXPECT_TRUE(contains(C, "sp_ones(_A) :-"));
  EXPECT_TRUE(contains(C, "sp_ones(n)"));
}

} // namespace
