//===- strictness_test.cpp - End-to-end strictness analysis tests -----------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Checks the analysis results of Section 3.2 / Figure 4: sp_ap(e,X,Y) has
// the single solution {X=e, Y=e} (append is ee-strict in both arguments),
// and sp_ap(d,X,Y) has {X=e,Y=d} and {X=d,Y=n} (d-strict in the first
// argument only).
//
//===----------------------------------------------------------------------===//

#include "strictness/Strictness.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

StrictnessResult analyzeOk(const char *Source) {
  StrictnessAnalyzer A;
  auto R = A.analyze(Source);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  return R ? std::move(*R) : StrictnessResult();
}

TEST(Strictness, Figure4Append) {
  auto R = analyzeOk(R"(
    ap(nil, ys) = ys.
    ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).
  )");
  const FuncStrictness *Ap = R.find("ap");
  ASSERT_NE(Ap, nullptr);
  // e-demand: both arguments demanded to normal form (ee-strict).
  EXPECT_EQ(Ap->UnderE, (std::vector<Demand>{Demand::Full, Demand::Full}));
  EXPECT_FALSE(Ap->DivergesUnderE);
  // d-demand: first argument d, second undemanded.
  EXPECT_EQ(Ap->UnderD, (std::vector<Demand>{Demand::Head, Demand::None}));
  EXPECT_EQ(Ap->summary(), "ap: e->(e,e) d->(d,n)");
}

TEST(Strictness, IdentityPropagatesDemand) {
  auto R = analyzeOk("id(x) = x.");
  const FuncStrictness *Id = R.find("id");
  ASSERT_NE(Id, nullptr);
  EXPECT_EQ(Id->UnderE, (std::vector<Demand>{Demand::Full}));
  EXPECT_EQ(Id->UnderD, (std::vector<Demand>{Demand::Head}));
}

TEST(Strictness, ConstantFunctionDemandsNothing) {
  auto R = analyzeOk("k(x, y) = x.");
  const FuncStrictness *K = R.find("k");
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->UnderE, (std::vector<Demand>{Demand::Full, Demand::None}));
  EXPECT_EQ(K->UnderD, (std::vector<Demand>{Demand::Head, Demand::None}));
}

TEST(Strictness, ConstructorShieldsComponents) {
  // Wrapping in a constructor: d-demand on the result does not demand x.
  auto R = analyzeOk("wrap(x) = cons(x, nil).");
  const FuncStrictness *W = R.find("wrap");
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->UnderD, (std::vector<Demand>{Demand::None}));
  // e-demand forces the component to normal form.
  EXPECT_EQ(W->UnderE, (std::vector<Demand>{Demand::Full}));
}

TEST(Strictness, ArithmeticIsFullyStrict) {
  auto R = analyzeOk("plus(x, y) = x + y.");
  const FuncStrictness *P = R.find("plus");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->UnderE, (std::vector<Demand>{Demand::Full, Demand::Full}));
  EXPECT_EQ(P->UnderD, (std::vector<Demand>{Demand::Full, Demand::Full}));
}

TEST(Strictness, IfIsStrictOnlyInCondition) {
  auto R = analyzeOk(R"(
    if(true, t, e) = t.
    if(false, t, e) = e.
    choose(c, a, b) = if(c, a, b).
  )");
  const FuncStrictness *If = R.find("if");
  ASSERT_NE(If, nullptr);
  // The condition is matched (extent d or e); the two equations demand
  // different branches, so neither branch is guaranteed demanded.
  EXPECT_GE(If->UnderE[0], Demand::Head);
  EXPECT_EQ(If->UnderE[1], Demand::None);
  EXPECT_EQ(If->UnderE[2], Demand::None);
  const FuncStrictness *Ch = R.find("choose");
  ASSERT_NE(Ch, nullptr);
  EXPECT_GE(Ch->UnderE[0], Demand::Head);
  EXPECT_EQ(Ch->UnderE[1], Demand::None);
}

TEST(Strictness, LengthDemandsSpineOnly) {
  // len needs the whole spine but no elements: the pm_cons extents let the
  // element demand stay below e, so len is d-strict (not e-strict) in its
  // argument under any demand on the (flat) result.
  auto R = analyzeOk(R"(
    len(nil) = 0.
    len(cons(x, xs)) = 1 + len(xs).
  )");
  const FuncStrictness *L = R.find("len");
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->UnderE, (std::vector<Demand>{Demand::Head}));
  EXPECT_EQ(L->UnderD, (std::vector<Demand>{Demand::Head}));
}

TEST(Strictness, HeadFunction) {
  auto R = analyzeOk("hd(cons(x, xs)) = x.");
  const FuncStrictness *H = R.find("hd");
  ASSERT_NE(H, nullptr);
  // e-demand on hd's result demands the element fully but the tail not at
  // all, so the argument extent is d (hnf), not e.
  EXPECT_EQ(H->UnderE, (std::vector<Demand>{Demand::Head}));
}

TEST(Strictness, RecursiveDivergence) {
  auto R = analyzeOk("bot(x) = bot(x).");
  const FuncStrictness *B = R.find("bot");
  ASSERT_NE(B, nullptr);
  // sp_bot(e, X) has no solution: bot diverges under any demand.
  EXPECT_TRUE(B->DivergesUnderE);
  EXPECT_TRUE(B->DivergesUnderD);
  EXPECT_TRUE(B->strictIn(0)); // Vacuously strict.
}

TEST(Strictness, MutualRecursion) {
  auto R = analyzeOk(R"(
    evenlen(nil) = true.
    evenlen(cons(x, xs)) = oddlen(xs).
    oddlen(nil) = false.
    oddlen(cons(x, xs)) = evenlen(xs).
  )");
  const FuncStrictness *E = R.find("evenlen");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->UnderE, (std::vector<Demand>{Demand::Head}));
  EXPECT_EQ(E->UnderD, (std::vector<Demand>{Demand::Head}));
}

TEST(Strictness, ReverseWithAccumulator) {
  auto R = analyzeOk(R"(
    rev(nil, acc) = acc.
    rev(cons(x, xs), acc) = rev(xs, cons(x, acc)).
  )");
  const FuncStrictness *Rev = R.find("rev");
  ASSERT_NE(Rev, nullptr);
  // e-demand: the spine of arg1 is needed... and the accumulator is
  // returned, so it is demanded too.
  EXPECT_GE(Rev->UnderE[0], Demand::Head);
  EXPECT_GE(Rev->UnderE[1], Demand::Head);
  // d-demand: rev recurses until nil; arg1's spine is still walked.
  EXPECT_GE(Rev->UnderD[0], Demand::Head);
}

TEST(Strictness, PhaseTimingsAndTableSpace) {
  auto R = analyzeOk("id(x) = x.");
  EXPECT_GE(R.PreprocSeconds, 0.0);
  EXPECT_GT(R.TableSpaceBytes, 0u);
  EXPECT_GT(R.Stats.AnswersRecorded, 0u);
}

TEST(Strictness, LiteralPatterns) {
  auto R = analyzeOk(R"(
    fact(0) = 1.
    fact(n) = n * fact(n - 1).
  )");
  const FuncStrictness *F = R.find("fact");
  ASSERT_NE(F, nullptr);
  // Matching against 0 and the arithmetic both force evaluation.
  EXPECT_GE(F->UnderE[0], Demand::Head);
}

} // namespace
