//===- support_test.cpp - Support-library and edge-case tests ----------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "support/Error.h"
#include "support/Stopwatch.h"
#include "support/TableFormat.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

TEST(ErrorOr, ValueAndErrorPaths) {
  ErrorOr<int> V(42);
  ASSERT_TRUE(V.hasValue());
  EXPECT_EQ(*V, 42);

  ErrorOr<int> E(Diagnostic("boom", {3, 7}));
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.getError().str(), "line 3, column 7: boom");

  ErrorOr<int> NoPos{Diagnostic("plain")};
  EXPECT_EQ(NoPos.getError().str(), "plain");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch W;
  volatile long Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  double First = W.elapsedSeconds();
  EXPECT_GE(First, 0.0);
  // Time is monotone.
  EXPECT_GE(W.elapsedSeconds(), First);
  W.restart();
  EXPECT_LT(W.elapsedSeconds(), First + 1.0);
}

TEST(PhaseTimer, AccumulatesIntervals) {
  PhaseTimer T;
  T.begin();
  T.end();
  T.begin();
  T.end();
  EXPECT_GE(T.seconds(), 0.0);
  T.reset();
  EXPECT_EQ(T.seconds(), 0.0);
  // end() without begin() is a no-op.
  T.end();
  EXPECT_EQ(T.seconds(), 0.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.addRow({"Name", "Value"});
  T.addRow({"x", "12345"});
  T.addRow({"longer", "1"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Name    Value"), std::string::npos) << Out;
  EXPECT_NE(Out.find("x       12345"), std::string::npos) << Out;
  EXPECT_NE(Out.find("longer  1"), std::string::npos) << Out;
  EXPECT_EQ(TextTable().render(), "");
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(7ull), "7");
}

//===----------------------------------------------------------------------===//
// Engine edge cases not covered elsewhere
//===----------------------------------------------------------------------===//

class EdgeTest : public ::testing::Test {
protected:
  EdgeTest() : DB(Syms), S(DB) {}

  size_t count(const char *Program, const char *Goal) {
    auto L = DB.consult(Program);
    EXPECT_TRUE(L.hasValue()) << L.getError().str();
    auto G = Parser::parseTerm(Syms, S.store(), Goal);
    EXPECT_TRUE(G.hasValue());
    return S.solve(*G, nullptr);
  }

  SymbolTable Syms;
  Database DB;
  Solver S;
};

TEST_F(EdgeTest, EmptyProgramQueriesFail) {
  EXPECT_EQ(count("", "anything(X)"), 0u);
}

TEST_F(EdgeTest, TableDeclarationBeforeClauses) {
  // Declaration precedes definition; the predicate must still be tabled
  // (left recursion terminates).
  EXPECT_EQ(count(":- table p/2.\n"
                  "p(X, Y) :- p(X, Z), e(Z, Y).\n"
                  "p(X, Y) :- e(X, Y).\n"
                  "e(1, 2). e(2, 3).",
                  "p(1, Y)"),
            2u);
}

TEST_F(EdgeTest, TableDeclarationListForm) {
  EXPECT_EQ(count(":- table [q/1, r/1].\n"
                  "q(1). r(2).",
                  "q(X)"),
            1u);
  EXPECT_TRUE(DB.isTabled({Syms.intern("r"), 1}));
}

TEST_F(EdgeTest, CutInsideIfThenElseConditionIsLocal) {
  EXPECT_EQ(count("p(1). p(2).\n"
                  "t(X) :- (p(X), ! -> q ; r).\n"
                  "q. r.",
                  "t(X)"),
            1u);
}

TEST_F(EdgeTest, DeepConjunctionParsesAndRuns) {
  std::string Prog = "p(0).\n";
  std::string Body = "p(0)";
  for (int I = 0; I < 200; ++I)
    Body += ", p(0)";
  Prog += "q :- " + Body + ".\n";
  EXPECT_EQ(count(Prog.c_str(), "q"), 1u);
}

TEST_F(EdgeTest, IsWithUnboundRhsFails) {
  EXPECT_EQ(count("p(X) :- Y is X + 1, '='(X, Y).", "p(Z)"), 0u);
}

TEST_F(EdgeTest, NegationOfTabledGoal) {
  EXPECT_EQ(count(":- table p/1.\n"
                  "p(1).\n"
                  "ok :- \\+ p(2).\n"
                  "bad :- \\+ p(1).",
                  "ok"),
            1u);
  auto G = Parser::parseTerm(Syms, S.store(), "bad");
  EXPECT_EQ(S.solve(*G, nullptr), 0u);
}

TEST_F(EdgeTest, HeapResetKeepsTables) {
  count(":- table p/1. p(7).", "p(X)");
  S.resetHeap();
  auto G = Parser::parseTerm(Syms, S.store(), "p(Y)");
  EXPECT_EQ(S.solve(*G, nullptr), 1u);
}

TEST(WriterEdge, OperatorAtomsAndEscapes) {
  SymbolTable Syms;
  TermStore S;
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkAtom(Syms.intern("it's"))),
            "'it\\'s'");
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkAtom(Syms.intern("=.."))),
            "=..");
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkAtom(Syms.intern(""))),
            "''");
}

TEST(ParserEdge, ErrorPositionsAreReported) {
  SymbolTable Syms;
  TermStore S;
  auto R = Parser::parseProgram(Syms, S, "ok(a).\nbroken(b\n");
  ASSERT_FALSE(R.hasValue());
  EXPECT_GE(R.getError().Pos.Line, 2u);
}

TEST(ParserEdge, CommentsEverywhere) {
  SymbolTable Syms;
  TermStore S;
  auto R = Parser::parseProgram(Syms, S, R"(
    % leading comment
    p(a). /* inline */ p(b). % trailing
    /* multi
       line */ p(c).
  )");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->size(), 3u);
}

} // namespace
