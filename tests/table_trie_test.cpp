//===- table_trie_test.cpp - Term-trie table tests -------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The trie contract: a root-to-leaf path is the canonical preorder
// encoding of a term (tuple) with variables numbered in first-occurrence
// order, so two keys land on the same leaf exactly when canonicalKey()
// produces the same string — i.e. when the terms are variants. The
// property test below checks that equivalence on randomized terms, and
// the end-to-end tests check that both table representations produce
// bit-identical analysis results.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "prop/Groundness.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"
#include "strictness/Strictness.h"
#include "table/TermTrie.h"
#include "term/Variant.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace lpa;

namespace {

class TermTrieTest : public ::testing::Test {
protected:
  TermRef parse(const char *Text) {
    auto T = Parser::parseTerm(Syms, S, Text);
    EXPECT_TRUE(T.hasValue()) << Text;
    return *T;
  }

  SymbolTable Syms;
  TermStore S;
  TermTrie Trie;
};

TEST_F(TermTrieTest, InsertThenFindGroundTerms) {
  EXPECT_TRUE(Trie.insert(S, parse("f(a, 1)"), 7).Inserted);
  EXPECT_TRUE(Trie.insert(S, parse("f(a, 2)"), 8).Inserted);
  EXPECT_TRUE(Trie.insert(S, parse("g(a, 1)"), 9).Inserted);
  EXPECT_EQ(Trie.find(S, parse("f(a, 1)")), 7u);
  EXPECT_EQ(Trie.find(S, parse("f(a, 2)")), 8u);
  EXPECT_EQ(Trie.find(S, parse("g(a, 1)")), 9u);
  EXPECT_EQ(Trie.find(S, parse("f(a, 3)")), TermTrie::NoValue);
  EXPECT_EQ(Trie.find(S, parse("f(b, 1)")), TermTrie::NoValue);
  EXPECT_EQ(Trie.valueCount(), 3u);
}

TEST_F(TermTrieTest, DuplicateInsertIsAHit) {
  auto First = Trie.insert(S, parse("p(a, f(b))"), 1);
  EXPECT_TRUE(First.Inserted);
  auto Second = Trie.insert(S, parse("p(a, f(b))"), 2);
  EXPECT_FALSE(Second.Inserted);
  EXPECT_EQ(Second.Value, 1u);
  EXPECT_EQ(Second.NodesCreated, 0u);
  EXPECT_EQ(Trie.valueCount(), 1u);
}

TEST_F(TermTrieTest, VariantsShareOneKey) {
  // Renamed variables are the same key; sharing patterns are not.
  EXPECT_TRUE(Trie.insert(S, parse("p(X, Y)"), 1).Inserted);
  EXPECT_FALSE(Trie.insert(S, parse("p(A, B)"), 2).Inserted);
  EXPECT_TRUE(Trie.insert(S, parse("p(X, X)"), 3).Inserted);
  EXPECT_FALSE(Trie.insert(S, parse("p(C, C)"), 4).Inserted);
  // Instances are distinct keys from their generalizations.
  EXPECT_TRUE(Trie.insert(S, parse("p(a, X)"), 5).Inserted);
  EXPECT_EQ(Trie.valueCount(), 3u);
}

TEST_F(TermTrieTest, VarsOutInFirstOccurrenceOrder) {
  TermRef T = parse("p(X, f(Y, X), Z)");
  std::vector<TermRef> Vars;
  Trie.insert(S, T, 0, &Vars);
  // X, Y, Z in left-to-right first-occurrence order; X listed once.
  ASSERT_EQ(Vars.size(), 3u);
  EXPECT_EQ(Vars[0], S.deref(S.arg(T, 0)));
  EXPECT_EQ(Vars[1], S.deref(S.arg(S.deref(S.arg(T, 1)), 0)));
  EXPECT_EQ(Vars[2], S.deref(S.arg(T, 2)));
  // A hit reports the same variables for the probing term.
  TermRef U = parse("p(A, f(B, A), C)");
  std::vector<TermRef> Vars2;
  EXPECT_FALSE(Trie.insert(S, U, 1, &Vars2).Inserted);
  ASSERT_EQ(Vars2.size(), 3u);
  EXPECT_EQ(Vars2[0], S.deref(S.arg(U, 0)));
}

TEST_F(TermTrieTest, TupleKeysShareOneNumbering) {
  // The variable numbering spans the whole tuple: (X, X) != (X, Y).
  TermRef A = S.mkVar(), B = S.mkVar();
  TermRef SameTwice[2] = {A, A};
  TermRef Distinct[2] = {A, B};
  EXPECT_TRUE(Trie.insert(S, std::span<const TermRef>(SameTwice), 1).Inserted);
  EXPECT_TRUE(Trie.insert(S, std::span<const TermRef>(Distinct), 2).Inserted);
  TermRef C = S.mkVar(), D = S.mkVar();
  TermRef SameAgain[2] = {C, C};
  TermRef DistinctAgain[2] = {C, D};
  EXPECT_EQ(Trie.find(S, std::span<const TermRef>(SameAgain)), 1u);
  EXPECT_EQ(Trie.find(S, std::span<const TermRef>(DistinctAgain)), 2u);
}

TEST_F(TermTrieTest, EmptyTupleKeyUsesTheRoot) {
  // A ground call has no free variables: its answer binding tuple is
  // empty, and the empty key must behave like any other (one slot).
  std::span<const TermRef> Empty;
  EXPECT_TRUE(Trie.insert(S, Empty, 5).Inserted);
  auto Again = Trie.insert(S, Empty, 6);
  EXPECT_FALSE(Again.Inserted);
  EXPECT_EQ(Again.Value, 5u);
  EXPECT_EQ(Trie.find(S, Empty), 5u);
}

TEST_F(TermTrieTest, IntAndAtomPayloadsDoNotAlias) {
  // An atom whose SymbolId happens to equal an integer's value must not
  // collide with it: the token kind disambiguates.
  SymbolId A = Syms.intern("aliasing_probe");
  TermRef Atom = S.mkAtom(A);
  TermRef Int = S.mkInt(static_cast<int64_t>(A));
  EXPECT_TRUE(Trie.insert(S, Atom, 1).Inserted);
  EXPECT_TRUE(Trie.insert(S, Int, 2).Inserted);
  EXPECT_EQ(Trie.find(S, Atom), 1u);
  EXPECT_EQ(Trie.find(S, Int), 2u);
}

TEST_F(TermTrieTest, HashEscalationKeepsWideFanoutsCorrect) {
  // 64 distinct children under one node: well past EscalateFanout, so the
  // chain escalates to a hash map mid-test and must stay consistent.
  for (int I = 0; I < 64; ++I)
    EXPECT_TRUE(Trie.insert(S, S.mkInt(I), static_cast<uint32_t>(I)).Inserted);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Trie.find(S, S.mkInt(I)), static_cast<uint32_t>(I));
  EXPECT_EQ(Trie.find(S, S.mkInt(64)), TermTrie::NoValue);
  EXPECT_EQ(Trie.nodeCount(), 64u);
}

TEST_F(TermTrieTest, LongRefChainsDerefToTheirTarget) {
  // v -> v -> ... -> X (unbound): keys through the chain are the same key
  // as X itself.
  TermRef X = S.mkVar();
  TermRef Chain = X;
  for (int I = 0; I < 32; ++I) {
    TermRef V = S.mkVar();
    S.bind(V, Chain);
    Chain = V;
  }
  TermRef Args1[1] = {Chain};
  std::vector<TermRef> Vars;
  TermRef F1 = S.mkStruct(Syms.intern("f"), std::span<const TermRef>(Args1));
  EXPECT_TRUE(Trie.insert(S, F1, 1, &Vars).Inserted);
  ASSERT_EQ(Vars.size(), 1u);
  EXPECT_EQ(Vars[0], X); // The dereffed variable, not a chain link.
  TermRef Args2[1] = {X};
  TermRef F2 = S.mkStruct(Syms.intern("f"), std::span<const TermRef>(Args2));
  EXPECT_FALSE(Trie.insert(S, F2, 2).Inserted);
  // A chain ending in a ground term keys as that term.
  TermRef G = S.mkVar();
  S.bind(G, parse("g(a)"));
  EXPECT_TRUE(Trie.insert(S, G, 3).Inserted);
  EXPECT_EQ(Trie.find(S, parse("g(a)")), 3u);
}

TEST_F(TermTrieTest, ClearDropsEverything) {
  Trie.insert(S, parse("f(a)"), 1);
  Trie.insert(S, parse("f(X)"), 2);
  Trie.clear();
  EXPECT_EQ(Trie.valueCount(), 0u);
  EXPECT_EQ(Trie.nodeCount(), 0u);
  EXPECT_EQ(Trie.find(S, parse("f(a)")), TermTrie::NoValue);
  EXPECT_TRUE(Trie.insert(S, parse("f(a)"), 9).Inserted);
  EXPECT_EQ(Trie.find(S, parse("f(a)")), 9u);
}

/// Builds a random term over a small vocabulary. Shared subterms come from
/// reusing entries of \p Built; variables from a small pool (repeats make
/// nontrivial sharing patterns) plus occasional Ref chains onto them.
class RandomTermGen {
public:
  RandomTermGen(SymbolTable &Syms, TermStore &S, uint32_t Seed)
      : Syms(Syms), S(S), Rng(Seed) {
    for (const char *N : {"a", "b", "c"})
      Atoms.push_back(Syms.intern(N));
    Funcs = {Syms.intern("f"), Syms.intern("g"), Syms.intern("h")};
    for (int I = 0; I < 4; ++I)
      VarPool.push_back(S.mkVar());
  }

  TermRef gen(int Depth) {
    switch (pick(Depth <= 0 ? 4 : 7)) {
    case 0:
      return S.mkAtom(Atoms[pick(Atoms.size())]);
    case 1:
      return S.mkInt(static_cast<int64_t>(pick(5)));
    case 2:
      return VarPool[pick(VarPool.size())];
    case 3: { // Ref chain of length 1..8 onto a pool variable.
      TermRef T = VarPool[pick(VarPool.size())];
      for (size_t I = 0, E = 1 + pick(8); I < E; ++I) {
        TermRef V = S.mkVar();
        S.bind(V, T);
        T = V;
      }
      return T;
    }
    case 4: // Shared subterm: reuse something generated earlier.
      if (!Built.empty())
        return Built[pick(Built.size())];
      [[fallthrough]];
    default: {
      std::vector<TermRef> Args;
      for (size_t I = 0, E = 1 + pick(3); I < E; ++I)
        Args.push_back(gen(Depth - 1));
      TermRef T = S.mkStruct(Funcs[pick(Funcs.size())],
                             std::span<const TermRef>(Args));
      Built.push_back(T);
      return T;
    }
    }
  }

private:
  size_t pick(size_t N) { return std::uniform_int_distribution<size_t>(0, N - 1)(Rng); }

  SymbolTable &Syms;
  TermStore &S;
  std::mt19937 Rng;
  std::vector<SymbolId> Atoms;
  std::vector<SymbolId> Funcs;
  std::vector<TermRef> VarPool;
  std::vector<TermRef> Built;
};

TEST_F(TermTrieTest, PropertyTrieEqualsCanonicalKeyEquality) {
  // The central invariant: two terms reach the same trie leaf exactly
  // when their canonical keys are equal (path equality == variance).
  RandomTermGen Gen(Syms, S, /*Seed=*/0xC0FFEE);
  std::map<std::string, uint32_t> FirstByKey;
  uint32_t NextValue = 0;
  for (int I = 0; I < 500; ++I) {
    TermRef T = Gen.gen(/*Depth=*/3);
    std::string Key = canonicalKey(S, T);
    auto [It, New] = FirstByKey.emplace(Key, NextValue);
    auto R = Trie.insert(S, T, NextValue);
    EXPECT_EQ(R.Inserted, New) << "term " << I << " key " << Key;
    EXPECT_EQ(R.Value, It->second) << "term " << I << " key " << Key;
    EXPECT_EQ(Trie.find(S, T), It->second);
    if (New)
      ++NextValue;
  }
  EXPECT_EQ(Trie.valueCount(), FirstByKey.size());
  // Sanity: the workload actually produced both hits and misses.
  EXPECT_GT(FirstByKey.size(), 50u);
  EXPECT_LT(FirstByKey.size(), 500u);
}

/// Runs groundness analysis with the given table representation.
GroundnessResult analyzeGroundness(const char *Source, bool UseTrieTables) {
  bool Prev = Solver::setDefaultUseTrieTables(UseTrieTables);
  SymbolTable Syms;
  GroundnessAnalyzer Analyzer(Syms);
  auto R = Analyzer.analyze(Source);
  Solver::setDefaultUseTrieTables(Prev);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  return R ? std::move(*R) : GroundnessResult();
}

TEST(TableRepresentationAB, GroundnessResultsAreBitIdentical) {
  const char *Prog = R"(
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    rev([], []).
    rev([X|Xs], R) :- rev(Xs, T), app(T, [X], R).
    perm([], []).
    perm(L, [H|T]) :- sel(H, L, R), perm(R, T).
    sel(X, [X|T], T).
    sel(X, [H|T], [H|R]) :- sel(X, T, R).
    main(X) :- rev([a,b,c], Y), perm(Y, X).
  )";
  GroundnessResult Trie = analyzeGroundness(Prog, /*UseTrieTables=*/true);
  GroundnessResult Str = analyzeGroundness(Prog, /*UseTrieTables=*/false);
  ASSERT_EQ(Trie.Predicates.size(), Str.Predicates.size());
  for (size_t I = 0; I < Trie.Predicates.size(); ++I) {
    SCOPED_TRACE(Trie.Predicates[I].Name);
    EXPECT_EQ(Trie.Predicates[I].Name, Str.Predicates[I].Name);
    EXPECT_EQ(Trie.Predicates[I].Arity, Str.Predicates[I].Arity);
    EXPECT_EQ(Trie.Predicates[I].SuccessSet, Str.Predicates[I].SuccessSet);
    EXPECT_EQ(Trie.Predicates[I].CallPatterns, Str.Predicates[I].CallPatterns);
  }
}

/// Solves the same program and goal under one table representation and
/// returns every answer of the goal's subgoal, materialized in recording
/// order through findSubgoal + answerInstance.
std::vector<std::string> enumerateAnswers(const char *Prog, const char *GoalText,
                                          bool UseTrieTables) {
  SymbolTable Syms;
  Database DB(Syms);
  auto C = DB.consult(Prog);
  EXPECT_TRUE(C.hasValue()) << (C ? "" : C.getError().str());
  Solver::Options Opts;
  Opts.UseTrieTables = UseTrieTables;
  Solver Engine(DB, Opts);
  auto Goal = Parser::parseTerm(Syms, Engine.store(), GoalText);
  EXPECT_TRUE(Goal.hasValue()) << GoalText;
  Engine.solve(*Goal, nullptr);
  const Subgoal *SG = Engine.findSubgoal(*Goal);
  EXPECT_NE(SG, nullptr) << GoalText;
  std::vector<std::string> Out;
  if (!SG)
    return Out;
  for (size_t I = 0, N = Engine.answerCount(*SG); I < N; ++I) {
    TermStore Scratch;
    TermRef Inst = Engine.answerInstance(*SG, I, Scratch);
    Out.push_back(TermWriter::toString(Syms, Scratch, Inst));
  }
  return Out;
}

TEST(TableRepresentationAB, AnswerEnumerationOrderIsIdentical) {
  // Both table representations must expose the same answers in the same
  // recording order through the findSubgoal/answerInstance API: downstream
  // consumers (provenance premise indices, fleet fingerprints) identify an
  // answer by its position, so order is part of the contract, not an
  // implementation detail.
  const char *Prog = R"(
    :- table path/2.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    edge(a, b). edge(b, c). edge(c, a). edge(b, d).
    :- table app/3.
    app([], Ys, Ys).
    app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
    :- table splits/2.
    splits(L, s(A, B)) :- app(A, B, L).
  )";
  for (const char *Goal :
       {"path(a, X)", "path(X, Y)", "splits([a,b,c], S)"}) {
    SCOPED_TRACE(Goal);
    std::vector<std::string> Trie =
        enumerateAnswers(Prog, Goal, /*UseTrieTables=*/true);
    std::vector<std::string> Str =
        enumerateAnswers(Prog, Goal, /*UseTrieTables=*/false);
    EXPECT_FALSE(Trie.empty());
    EXPECT_EQ(Trie, Str);
  }
}

TEST(TableRepresentationAB, StrictnessResultsAreBitIdentical) {
  const char *Prog = R"(
    ap(nil, ys) = ys.
    ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).
    len(nil) = zero.
    len(cons(x, xs)) = succ(len(xs)).
    rev(nil) = nil.
    rev(cons(x, xs)) = ap(rev(xs), cons(x, nil)).
  )";
  auto Analyze = [&](bool UseTrieTables) {
    bool Prev = Solver::setDefaultUseTrieTables(UseTrieTables);
    StrictnessAnalyzer A;
    auto R = A.analyze(Prog);
    Solver::setDefaultUseTrieTables(Prev);
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
    return R ? std::move(*R) : StrictnessResult();
  };
  StrictnessResult Trie = Analyze(true);
  StrictnessResult Str = Analyze(false);
  ASSERT_EQ(Trie.Functions.size(), Str.Functions.size());
  for (size_t I = 0; I < Trie.Functions.size(); ++I) {
    SCOPED_TRACE(Trie.Functions[I].Name);
    EXPECT_EQ(Trie.Functions[I].Name, Str.Functions[I].Name);
    EXPECT_EQ(Trie.Functions[I].UnderE, Str.Functions[I].UnderE);
    EXPECT_EQ(Trie.Functions[I].UnderD, Str.Functions[I].UnderD);
    EXPECT_EQ(Trie.Functions[I].DivergesUnderE, Str.Functions[I].DivergesUnderE);
    EXPECT_EQ(Trie.Functions[I].DivergesUnderD, Str.Functions[I].DivergesUnderD);
  }
}

} // namespace
