//===- tabling_test.cpp - Tabled evaluation tests ---------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Tabling gives the two properties the paper relies on: completeness
// (termination on finite-domain programs, even left-recursive ones) and
// call capture (every subgoal is recorded, yielding input patterns).
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

#include <set>

using namespace lpa;

namespace {

class TablingTest : public ::testing::Test {
protected:
  TablingTest() : DB(Syms), S(DB) {}

  void consult(const char *Text) {
    auto R = DB.consult(Text);
    ASSERT_TRUE(R.hasValue()) << R.getError().str();
  }

  std::vector<std::string> query(const char *GoalText) {
    auto Goal = Parser::parseTerm(Syms, S.store(), GoalText);
    EXPECT_TRUE(Goal.hasValue()) << GoalText;
    std::vector<std::string> Out;
    S.solve(*Goal, [&]() {
      Out.push_back(TermWriter::toString(Syms, S.storeConst(), *Goal));
      return false;
    });
    return Out;
  }

  std::set<std::string> querySet(const char *GoalText) {
    auto V = query(GoalText);
    return std::set<std::string>(V.begin(), V.end());
  }

  SymbolTable Syms;
  Database DB;
  Solver S;
};

TEST_F(TablingTest, LeftRecursiveTransitiveClosureTerminates) {
  consult(R"(
    :- table path/2.
    path(X, Y) :- path(X, Z), edge(Z, Y).
    path(X, Y) :- edge(X, Y).
    edge(a, b). edge(b, c). edge(c, d).
  )");
  auto Sols = querySet("path(a, X)");
  std::set<std::string> Expected{"path(a,b)", "path(a,c)", "path(a,d)"};
  EXPECT_EQ(Sols, Expected);
}

TEST_F(TablingTest, CyclicGraphTerminates) {
  consult(R"(
    :- table path/2.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), path(Z, Y).
    edge(a, b). edge(b, a). edge(b, c).
  )");
  auto Sols = querySet("path(a, X)");
  std::set<std::string> Expected{"path(a,a)", "path(a,b)", "path(a,c)"};
  EXPECT_EQ(Sols, Expected);
}

TEST_F(TablingTest, OpenCallComputesFullRelation) {
  consult(R"(
    :- table path/2.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    edge(a, b). edge(b, c).
  )");
  EXPECT_EQ(querySet("path(X, Y)").size(), 3u); // ab, ac, bc.
}

TEST_F(TablingTest, AnswersAreDeduplicated) {
  consult(R"(
    :- table p/1.
    p(X) :- q(X).
    p(X) :- r(X).
    q(a). q(b). r(a). r(b).
  )");
  EXPECT_EQ(query("p(X)").size(), 2u);
  EXPECT_GT(S.stats().AnswersDuplicate, 0u);
}

TEST_F(TablingTest, VariantCallsReuseTables) {
  consult(R"(
    :- table p/1.
    p(a). p(b).
  )");
  query("p(X)");
  uint64_t SubgoalsAfterFirst = S.stats().SubgoalsCreated;
  query("p(Y)"); // A variant of p(X): must hit the table.
  EXPECT_EQ(S.stats().SubgoalsCreated, SubgoalsAfterFirst);
}

TEST_F(TablingTest, NonVariantCallsGetOwnTables) {
  consult(R"(
    :- table p/2.
    p(a, 1). p(b, 2).
  )");
  query("p(X, Y)");
  uint64_t N1 = S.stats().SubgoalsCreated;
  query("p(a, Y)"); // Not a variant of p(X, Y).
  EXPECT_EQ(S.stats().SubgoalsCreated, N1 + 1);
}

TEST_F(TablingTest, MutualRecursionCompletes) {
  consult(R"(
    :- table even/1.
    :- table odd/1.
    even(z).
    even(s(X)) :- odd(X).
    odd(s(X)) :- even(X).
    num(z). num(s(X)) :- num(X).
  )");
  EXPECT_EQ(query("even(s(s(z)))").size(), 1u);
  EXPECT_EQ(query("odd(s(s(z)))").size(), 0u);
  EXPECT_EQ(query("even(s(s(s(s(z)))))").size(), 1u);
}

TEST_F(TablingTest, SameGenerationProgram) {
  // The classic same-generation benchmark; quadratic without tabling.
  consult(R"(
    :- table sg/2.
    sg(X, X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
    par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1). par(c3, p2).
  )");
  auto Sols = querySet("sg(c1, Y)");
  EXPECT_TRUE(Sols.count("sg(c1,c2)"));
  EXPECT_TRUE(Sols.count("sg(c1,c1)"));
  // c3 is in the same generation as c1 via g1 (p1/p2 are siblings).
  EXPECT_TRUE(Sols.count("sg(c1,c3)"));
}

TEST_F(TablingTest, FibonacciBecomesLinearWithTabling) {
  consult(R"(
    :- table fib/2.
    fib(0, 0).
    fib(1, 1).
    fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,
                 fib(N1, F1), fib(N2, F2), F is F1 + F2.
  )");
  auto Sols = query("fib(24, F)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(Sols[0], "fib(24,46368)");
  // Tabled evaluation creates exactly one subgoal per distinct call:
  // fib(24)..fib(0) = 25 subgoals.
  EXPECT_EQ(S.stats().SubgoalsCreated, 25u);
}

TEST_F(TablingTest, CallTableRecordsInputPatterns) {
  // Section 3.1: calls captured by the table are the input patterns.
  consult(R"(
    :- table p/2.
    :- table q/2.
    p(X, Y) :- q(a, Y), '='(X, Y).
    q(_, b).
  )");
  query("p(X, Y)");
  std::set<std::string> CallPatterns;
  TermWriter W(Syms, S.tableStore());
  for (const Subgoal *SG : S.subgoals())
    CallPatterns.insert(TermWriter::toString(Syms, S.tableStore(),
                                             SG->CallTerm));
  // The call to q was made with first argument bound to a.
  EXPECT_TRUE(CallPatterns.count("q(a,_A)")) << "captured calls:";
  EXPECT_TRUE(CallPatterns.count("p(_A,_B)"));
}

TEST_F(TablingTest, NonGroundAnswersAreSupported) {
  consult(R"(
    :- table p/2.
    p(X, Y) :- '='(X, f(Y)).
  )");
  auto Sols = query("p(A, B)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(Sols[0], "p(f(_A),_A)");
}

TEST_F(TablingTest, TablesPersistAcrossQueriesUntilCleared) {
  consult(":- table p/1. p(a).");
  query("p(X)");
  EXPECT_EQ(S.subgoals().size(), 1u);
  query("p(X)");
  EXPECT_EQ(S.subgoals().size(), 1u);
  S.clearTables();
  EXPECT_EQ(S.subgoals().size(), 0u);
  EXPECT_EQ(query("p(X)").size(), 1u);
}

TEST_F(TablingTest, TableSpaceAccountingIsPositive) {
  consult(R"(
    :- table path/2.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    edge(a, b). edge(b, c). edge(c, d). edge(d, e).
  )");
  query("path(X, Y)");
  EXPECT_GT(S.tableSpaceBytes(), 0u);
  size_t Before = S.tableSpaceBytes();
  S.clearTables();
  EXPECT_LT(S.tableSpaceBytes(), Before);
}

TEST_F(TablingTest, CompletionReleasesScaffoldingState) {
  // On SCC completion the evaluation-only state -- clause frontiers
  // (supplementary tables), answer dedup keys/tries, consumer links --
  // must be freed: a completed table never gains an answer. Regression
  // test for both table representations; tableSpaceBytes() must shrink by
  // exactly the accounted amount (it no longer counts the freed state).
  consult(R"(
    :- table path/2.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    edge(a, b). edge(b, c). edge(c, d). edge(d, e).
  )");
  for (bool UseTrieTables : {true, false}) {
    SCOPED_TRACE(UseTrieTables ? "trie" : "string");
    Solver::Options Opts;
    Opts.UseTrieTables = UseTrieTables;
    Solver Local(DB, Opts);
    auto Goal = Parser::parseTerm(Syms, Local.store(), "path(X, Y)");
    ASSERT_TRUE(Goal.hasValue());
    size_t N = Local.solve(*Goal, nullptr);
    EXPECT_EQ(N, 10u); // 4-node chain: all ordered pairs.
    ASSERT_FALSE(Local.subgoals().empty());
    for (const Subgoal *SG : Local.subgoals()) {
      EXPECT_TRUE(SG->Complete);
      EXPECT_TRUE(SG->Frontiers.empty());
      EXPECT_TRUE(SG->AnswerKeys.empty());
      EXPECT_EQ(SG->AnswerTrie, nullptr);
      EXPECT_TRUE(SG->Consumers.empty());
    }
    // The release was accounted, and the retained table space excludes it.
    EXPECT_GT(Local.stats().FrontierBytesFreed, 0u);
    EXPECT_GT(Local.tableSpaceBytes(), 0u);
    // Completed tables still answer repeat calls (from the table alone).
    size_t Again = Local.solve(*Goal, nullptr);
    EXPECT_EQ(Again, N);
  }
}

TEST_F(TablingTest, NestedTabledCallsOnLegacyStringPath) {
  // The legacy string-keyed table path renders call and answer keys through
  // the solver's shared KeyScratch buffer. Nested producer runs (a tabled
  // call made while another tabled predicate's clause body is mid-flight)
  // interleave uses of that buffer; each use must be atomic — render, use,
  // done — or an inner call would clobber the outer call's key. This pins
  // the audited invariant with three levels of tabled nesting plus
  // interleaved variant lookups.
  consult(R"(
    :- table outer/2.
    :- table mid/2.
    :- table inner/2.
    outer(X, Y) :- mid(X, Z), mid(Z, Y).
    mid(X, Y) :- inner(X, Y).
    mid(X, Y) :- inner(X, Z), mid(Z, Y).
    inner(a, b). inner(b, c). inner(c, d).
  )");
  Solver::Options Opts;
  Opts.UseTrieTables = false;
  Solver Legacy(DB, Opts);
  auto Goal = Parser::parseTerm(Syms, Legacy.store(), "outer(a, Y)");
  ASSERT_TRUE(Goal.hasValue());
  std::set<std::string> Sols;
  Legacy.solve(*Goal, [&]() {
    Sols.insert(TermWriter::toString(Syms, Legacy.storeConst(), *Goal));
    return false;
  });
  // outer(a,Y): mid(a,Z) in {b,c,d}, then mid(Z,Y) — reachable in >= 2 steps.
  std::set<std::string> Expected{"outer(a,c)", "outer(a,d)"};
  EXPECT_EQ(Sols, Expected);
  // Every nested table completed and deduplicated correctly: repeat query
  // is answered from the tables alone with the same solutions.
  auto Again = Parser::parseTerm(Syms, Legacy.store(), "outer(a, W)");
  ASSERT_TRUE(Again.hasValue());
  EXPECT_EQ(Legacy.solve(*Again, nullptr), Sols.size());
}

TEST_F(TablingTest, ResetStatsLeavesTableAccountingIntact) {
  // resetStats() zeroes the run counters — including FrontierBytesFreed,
  // which feeds the "frontier_bytes_freed" metric — but tableSpaceBytes()
  // is derived from the live tables and must not move. Regression for the
  // interaction after SCC completion, both table representations.
  consult(R"(
    :- table path/2.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    edge(a, b). edge(b, c). edge(c, d). edge(d, e).
  )");
  for (bool UseTrieTables : {true, false}) {
    SCOPED_TRACE(UseTrieTables ? "trie" : "string");
    Solver::Options Opts;
    Opts.UseTrieTables = UseTrieTables;
    Solver Local(DB, Opts);
    auto Goal = Parser::parseTerm(Syms, Local.store(), "path(X, Y)");
    ASSERT_TRUE(Goal.hasValue());
    size_t N = Local.solve(*Goal, nullptr);
    EXPECT_EQ(N, 10u);
    size_t Bytes = Local.tableSpaceBytes();
    EXPECT_GT(Bytes, 0u);
    EXPECT_GT(Local.stats().FrontierBytesFreed, 0u);

    Local.resetStats();
    EXPECT_EQ(Local.stats().FrontierBytesFreed, 0u);
    EXPECT_EQ(Local.stats().IncompleteTables, 0u);
    EXPECT_EQ(Local.tableSpaceBytes(), Bytes);

    // A repeat query answers from the completed tables: no new subgoals,
    // no new scaffolding to free, accounting unchanged.
    EXPECT_EQ(Local.solve(*Goal, nullptr), N);
    EXPECT_EQ(Local.stats().FrontierBytesFreed, 0u);
    EXPECT_EQ(Local.stats().SubgoalsCreated, 0u);
    EXPECT_EQ(Local.tableSpaceBytes(), Bytes);

    Local.clearTables();
    EXPECT_LT(Local.tableSpaceBytes(), Bytes);
  }
}

TEST_F(TablingTest, FindSubgoalByVariant) {
  consult(":- table p/1. p(a). p(b).");
  query("p(X)");
  auto Goal = Parser::parseTerm(Syms, S.store(), "p(Zz)");
  ASSERT_TRUE(Goal.hasValue());
  const Subgoal *SG = S.findSubgoal(*Goal);
  ASSERT_NE(SG, nullptr);
  EXPECT_EQ(S.answerCount(*SG), 2u);
  EXPECT_TRUE(SG->Complete);

  auto Bound = Parser::parseTerm(Syms, S.store(), "p(a)");
  ASSERT_TRUE(Bound.hasValue());
  EXPECT_EQ(S.findSubgoal(*Bound), nullptr);
}

TEST_F(TablingTest, RightRecursionWithSharedSubgoals) {
  // Grid reachability: many overlapping subgoals; tabling collapses them.
  std::string Prog = ":- table reach/2.\n"
                     "reach(X, Y) :- edge(X, Y).\n"
                     "reach(X, Y) :- edge(X, Z), reach(Z, Y).\n";
  for (int I = 0; I < 20; ++I) {
    Prog += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 1) +
            ").\n";
    if (I % 2 == 0)
      Prog += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 2) +
              ").\n";
  }
  consult(Prog.c_str());
  EXPECT_EQ(query("reach(n0, n20)").size(), 1u);
  EXPECT_EQ(query("reach(n20, n0)").size(), 0u);
}

TEST_F(TablingTest, TabledAndNontabledMix) {
  consult(R"(
    :- table tc/2.
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
    e(X, Y) :- edge(X, Y).      % e/2 stays nontabled
    edge(a, b). edge(b, c).
  )");
  EXPECT_EQ(querySet("tc(a, X)").size(), 2u);
}

TEST_F(TablingTest, ZeroArityTabledPredicate) {
  consult(R"(
    :- table flag/0.
    flag :- cond.
    cond.
  )");
  EXPECT_EQ(query("flag").size(), 1u);
  EXPECT_EQ(query("flag").size(), 1u);
}

TEST_F(TablingTest, FixpointRoundsAreCounted) {
  consult(R"(
    :- table path/2.
    path(X, Y) :- path(X, Z), edge(Z, Y).
    path(X, Y) :- edge(X, Y).
    edge(a, b). edge(b, c).
  )");
  query("path(a, X)");
  EXPECT_GE(S.stats().FixpointRounds, 1u);
}

} // namespace
