//===- term_test.cpp - TermStore / symbol / writer unit tests --------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "term/Symbol.h"
#include "term/TermCopy.h"
#include "term/TermStore.h"
#include "term/TermWriter.h"
#include "term/Unify.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace lpa;

namespace {

TEST(SymbolTable, InterningIsIdempotent) {
  SymbolTable Syms;
  SymbolId A = Syms.intern("foo");
  SymbolId B = Syms.intern("foo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(Syms.name(A), "foo");
}

TEST(SymbolTable, DistinctNamesGetDistinctIds) {
  SymbolTable Syms;
  EXPECT_NE(Syms.intern("foo"), Syms.intern("bar"));
}

TEST(SymbolTable, LookupWithoutInterning) {
  SymbolTable Syms;
  EXPECT_EQ(Syms.lookup("nonexistent"), SymbolTable::NotFound);
  SymbolId Id = Syms.intern("present");
  EXPECT_EQ(Syms.lookup("present"), Id);
}

TEST(SymbolTable, WellKnownSymbolsExist) {
  SymbolTable Syms;
  EXPECT_EQ(Syms.name(Syms.Nil), "[]");
  EXPECT_EQ(Syms.name(Syms.Cons), ".");
  EXPECT_EQ(Syms.name(Syms.True), "true");
  EXPECT_EQ(Syms.name(Syms.BoolFalse), "false");
  EXPECT_EQ(Syms.name(Syms.Iff), "iff");
}

TEST(TermStore, FreshVariableIsUnbound) {
  TermStore S;
  TermRef V = S.mkVar();
  EXPECT_TRUE(S.isUnboundVar(V));
  EXPECT_EQ(S.deref(V), V);
}

TEST(TermStore, BindAndDeref) {
  SymbolTable Syms;
  TermStore S;
  TermRef V = S.mkVar();
  TermRef A = S.mkAtom(Syms.intern("a"));
  S.bind(V, A);
  EXPECT_FALSE(S.isUnboundVar(V));
  EXPECT_EQ(S.deref(V), A);
}

TEST(TermStore, BindChainsDereference) {
  SymbolTable Syms;
  TermStore S;
  TermRef V1 = S.mkVar(), V2 = S.mkVar();
  TermRef A = S.mkAtom(Syms.intern("a"));
  S.bind(V1, V2);
  S.bind(V2, A);
  EXPECT_EQ(S.deref(V1), A);
}

TEST(TermStore, UndoRestoresBindingsAndHeap) {
  SymbolTable Syms;
  TermStore S;
  TermRef V = S.mkVar();
  auto M = S.mark();
  TermRef A = S.mkAtom(Syms.intern("a"));
  S.bind(V, A);
  EXPECT_FALSE(S.isUnboundVar(V));
  size_t SizeWithAtom = S.size();
  EXPECT_GT(SizeWithAtom, M.HeapSize);
  S.undoTo(M);
  EXPECT_TRUE(S.isUnboundVar(V));
  EXPECT_EQ(S.size(), M.HeapSize);
}

TEST(TermStore, StructArguments) {
  SymbolTable Syms;
  TermStore S;
  TermRef X = S.mkInt(1), Y = S.mkInt(2);
  TermRef F = S.mkStruct2(Syms.intern("f"), X, Y);
  ASSERT_EQ(S.tag(F), TermTag::Struct);
  EXPECT_EQ(S.arity(F), 2u);
  EXPECT_EQ(S.intValue(S.deref(S.arg(F, 0))), 1);
  EXPECT_EQ(S.intValue(S.deref(S.arg(F, 1))), 2);
}

TEST(TermStore, ListConstruction) {
  SymbolTable Syms;
  TermStore S;
  std::vector<TermRef> Elems{S.mkInt(1), S.mkInt(2), S.mkInt(3)};
  TermRef L = S.mkList(Syms, Elems);
  TermWriter W(Syms, S);
  EXPECT_EQ(W.str(L), "[1,2,3]");
}

TEST(TermStore, PartialListWithTail) {
  SymbolTable Syms;
  TermStore S;
  TermRef Tail = S.mkVar();
  std::vector<TermRef> Elems{S.mkInt(1)};
  TermRef L = S.mkList(Syms, Elems, Tail);
  TermWriter W(Syms, S);
  EXPECT_EQ(W.str(L), "[1|_A]");
}

TEST(TermWriter, QuotesNonPlainAtoms) {
  SymbolTable Syms;
  TermStore S;
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkAtom(Syms.intern("hello"))),
            "hello");
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkAtom(Syms.intern("Hello"))),
            "'Hello'");
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkAtom(Syms.intern("two words"))),
            "'two words'");
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkAtom(Syms.intern(":-"))), ":-");
}

TEST(TermWriter, NegativeIntegers) {
  SymbolTable Syms;
  TermStore S;
  EXPECT_EQ(TermWriter::toString(Syms, S, S.mkInt(-42)), "-42");
}

// Standard Prolog unification omits the occur check, so X = f(X) builds a
// genuinely cyclic term. The writer must terminate on it with an explicit
// "..." marker and never emit unbalanced brackets.
bool bracketsBalanced(const std::string &S) {
  return std::count(S.begin(), S.end(), '(') ==
             std::count(S.begin(), S.end(), ')') &&
         std::count(S.begin(), S.end(), '[') ==
             std::count(S.begin(), S.end(), ']');
}

TEST(TermWriter, CyclicStructTerminatesWithEllipsis) {
  SymbolTable Syms;
  TermStore S;
  TermRef X = S.mkVar();
  TermRef Args[1] = {X};
  TermRef F = S.mkStruct(Syms.intern("f"), Args);
  ASSERT_TRUE(unify(S, X, F, /*OccursCheck=*/false));
  std::string Out = TermWriter::toString(Syms, S, X);
  EXPECT_NE(Out.find("..."), std::string::npos) << Out;
  EXPECT_TRUE(bracketsBalanced(Out)) << Out;
  EXPECT_EQ(Out.substr(0, 2), "f(");
}

TEST(TermWriter, CyclicListTailTerminatesBalanced) {
  SymbolTable Syms;
  TermStore S;
  // X = [a|X]: the list-tail fast path must hit the same guard as the
  // recursive writer, closing the bracket it opened.
  TermRef X = S.mkVar();
  TermRef L = S.mkStruct2(Syms.Cons, S.mkAtom(Syms.intern("a")), X);
  ASSERT_TRUE(unify(S, X, L, /*OccursCheck=*/false));
  std::string Out = TermWriter::toString(Syms, S, X);
  EXPECT_NE(Out.find("..."), std::string::npos) << Out;
  EXPECT_TRUE(bracketsBalanced(Out)) << Out;
  EXPECT_EQ(Out.front(), '[');
  EXPECT_EQ(Out.back(), ']');
}

TEST(TermWriter, CyclicTermInsideArgumentsStaysBalanced) {
  SymbolTable Syms;
  TermStore S;
  TermRef X = S.mkVar();
  TermRef Args[1] = {X};
  TermRef F = S.mkStruct(Syms.intern("loop"), Args);
  ASSERT_TRUE(unify(S, X, F, /*OccursCheck=*/false));
  // Wrap the cycle in a normal term: pair(loop(loop(...)), ok).
  TermRef P = S.mkStruct2(Syms.intern("pair"), F, S.mkAtom(Syms.intern("ok")));
  std::string Out = TermWriter::toString(Syms, S, P);
  EXPECT_NE(Out.find("..."), std::string::npos) << Out;
  EXPECT_TRUE(bracketsBalanced(Out)) << Out;
  // The sibling argument after the truncated cycle still renders.
  EXPECT_NE(Out.find("ok"), std::string::npos) << Out;
}

TEST(TermCopy, CopiesResolvedStructure) {
  SymbolTable Syms;
  TermStore Src, Dst;
  TermRef V = Src.mkVar();
  TermRef F = Src.mkStruct2(Syms.intern("f"), V, Src.mkInt(7));
  Src.bind(V, Src.mkAtom(Syms.intern("a")));

  TermRef C = copyTerm(Src, F, Dst);
  EXPECT_EQ(TermWriter::toString(Syms, Dst, C), "f(a,7)");
}

TEST(TermCopy, RenamesVariablesConsistently) {
  SymbolTable Syms;
  TermStore Src, Dst;
  TermRef V = Src.mkVar();
  // f(X, X) must copy to f(Y, Y) with one fresh Y.
  TermRef F = Src.mkStruct2(Syms.intern("f"), V, V);
  TermRef C = copyTerm(Src, F, Dst);
  TermRef A0 = Dst.deref(Dst.arg(C, 0));
  TermRef A1 = Dst.deref(Dst.arg(C, 1));
  EXPECT_EQ(A0, A1);
  EXPECT_TRUE(Dst.isUnboundVar(A0));
}

TEST(TermCopy, SharedRenamingLinksSeparateCopies) {
  SymbolTable Syms;
  TermStore Src, Dst;
  TermRef V = Src.mkVar();
  TermRef F = Src.mkStruct2(Syms.intern("f"), V, Src.mkInt(1));
  TermRef G = Src.mkStruct2(Syms.intern("g"), V, Src.mkInt(2));

  VarRenaming R;
  TermRef CF = copyTerm(Src, F, Dst, R);
  TermRef CG = copyTerm(Src, G, Dst, R);
  EXPECT_EQ(Dst.deref(Dst.arg(CF, 0)), Dst.deref(Dst.arg(CG, 0)));
}

TEST(TermCopy, DeepListDoesNotOverflow) {
  SymbolTable Syms;
  TermStore Src, Dst;
  TermRef L = Src.mkAtom(Syms.Nil);
  for (int I = 0; I < 200000; ++I)
    L = Src.mkStruct2(Syms.Cons, Src.mkInt(I), L);
  TermRef C = copyTerm(Src, L, Dst);
  EXPECT_EQ(Dst.tag(C), TermTag::Struct);
  EXPECT_GT(termSizeCells(Dst, C), 200000u);
}

TEST(TermCopy, TermSizeCountsCells) {
  SymbolTable Syms;
  TermStore S;
  TermRef A = S.mkAtom(Syms.intern("a"));
  EXPECT_EQ(termSizeCells(S, A), 1u);
  TermRef F = S.mkStruct2(Syms.intern("f"), A, S.mkInt(1));
  // Struct cell + 2 arg slots + atom + int.
  EXPECT_EQ(termSizeCells(S, F), 5u);
}

} // namespace
