//===- types_test.cpp - Hindley-Milner type inference tests ------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Section 6.1: type analysis as equality constraints solved by
// unification with occur check.
//
//===----------------------------------------------------------------------===//

#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

TypeResult inferOk(const char *Source) {
  auto R = TypeInference::inferText(Source);
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.getError().str());
  return R ? std::move(*R) : TypeResult();
}

TEST(Types, IdentityIsPolymorphic) {
  auto R = inferOk("id(x) = x.");
  const FuncType *Id = R.find("id");
  ASSERT_NE(Id, nullptr);
  ASSERT_TRUE(Id->Ok) << Id->Error;
  EXPECT_EQ(Id->Rendered, "(A) -> A");
}

TEST(Types, AppendOverLists) {
  auto R = inferOk(R"(
    ap(nil, ys) = ys.
    ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).
  )");
  const FuncType *Ap = R.find("ap");
  ASSERT_NE(Ap, nullptr);
  ASSERT_TRUE(Ap->Ok) << Ap->Error;
  EXPECT_EQ(Ap->Rendered, "(list(A), list(A)) -> list(A)");
}

TEST(Types, ArithmeticIsMonomorphic) {
  auto R = inferOk("fib(0) = 0. fib(1) = 1. "
                   "fib(n) = fib(n - 1) + fib(n - 2).");
  const FuncType *F = R.find("fib");
  ASSERT_NE(F, nullptr);
  ASSERT_TRUE(F->Ok) << F->Error;
  EXPECT_EQ(F->Rendered, "(int) -> int");
}

TEST(Types, ComparisonYieldsBool) {
  // Note the parentheses: '=' and '<' are both priority-700 xfx
  // operators, so "a = b < c" does not parse (ISO behaviour).
  auto R = inferOk("lt(x, y) = (x < y).");
  const FuncType *F = R.find("lt");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Rendered, "(int, int) -> bool");
}

TEST(Types, LetPolymorphismAcrossSccs) {
  // id is generalized before use: both instantiations coexist.
  auto R = inferOk(R"(
    id(x) = x.
    use(a, b) = cons(id(a), id(cons(b, nil))).
  )");
  const FuncType *U = R.find("use");
  ASSERT_NE(U, nullptr);
  ASSERT_TRUE(U->Ok) << U->Error;
  EXPECT_EQ(U->Rendered, "(A, A) -> list(A)");
}

TEST(Types, MonomorphicWithinScc) {
  // Mutual recursion keeps one signature per SCC.
  auto R = inferOk(R"(
    evenlen(nil) = true.
    evenlen(cons(x, xs)) = oddlen(xs).
    oddlen(nil) = false.
    oddlen(cons(x, xs)) = evenlen(xs).
  )");
  const FuncType *E = R.find("evenlen");
  ASSERT_NE(E, nullptr);
  ASSERT_TRUE(E->Ok) << E->Error;
  EXPECT_EQ(E->Rendered, "(list(A)) -> bool");
}

TEST(Types, DeclaredAdt) {
  auto R = inferOk(R"(
    :- adt(tree(A), [tip, node(tree(A), A, tree(A))]).
    tsize(tip) = 0.
    tsize(node(l, v, r)) = 1 + tsize(l) + tsize(r).
    tmember(x, tip) = false.
    tmember(x, node(l, v, r)) = if(x == v, true,
                                   if(x < v, tmember(x, l), tmember(x, r))).
    if(true, t, e) = t.
    if(false, t, e) = e.
  )");
  const FuncType *S = R.find("tsize");
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->Ok) << S->Error;
  EXPECT_EQ(S->Rendered, "(tree(A)) -> int");
  const FuncType *M = R.find("tmember");
  ASSERT_NE(M, nullptr);
  ASSERT_TRUE(M->Ok) << M->Error;
  // x is compared with < (int) and stored in tree(int).
  EXPECT_EQ(M->Rendered, "(int, tree(int)) -> bool");
}

TEST(Types, OccurCheckRejectsInfiniteTypes) {
  // f(x) = cons(x, x): x must be both A and list(A) — an infinite type.
  auto R = inferOk("selfcons(x) = cons(x, x).");
  const FuncType *F = R.find("selfcons");
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Ok);
  EXPECT_NE(F->Error.find("occur"), std::string::npos) << F->Error;
}

TEST(Types, ConstructorClashIsAnError) {
  auto R = inferOk("bad(x) = cons(1, 2).");
  const FuncType *F = R.find("bad");
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Ok);
}

TEST(Types, BranchTypeMismatch) {
  auto R = inferOk(R"(
    if(true, t, e) = t.
    if(false, t, e) = e.
    weird(c) = if(c, 1, nil).
  )");
  const FuncType *W = R.find("weird");
  ASSERT_NE(W, nullptr);
  EXPECT_FALSE(W->Ok);
}

TEST(Types, ErrorPropagatesToCallers) {
  auto R = inferOk(R"(
    broken(x) = cons(x, x).
    caller(y) = broken(y).
  )");
  const FuncType *C = R.find("caller");
  ASSERT_NE(C, nullptr);
  EXPECT_FALSE(C->Ok);
  EXPECT_NE(C->Error.find("broken"), std::string::npos);
}

TEST(Types, StructuralFallbackForUndeclaredCtors) {
  auto R = inferOk("swap(pair(a, b)) = pair(b, a).");
  const FuncType *S = R.find("swap");
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->Ok) << S->Error;
  EXPECT_EQ(S->Rendered, "(pair_t(A, B)) -> pair_t(B, A)");
}

TEST(Types, WellTypedCorpusPrograms) {
  // The sortable benchmarks are well-typed over ints and lists.
  const char *Mergesort = R"(
    if(true, t, e) = t.
    if(false, t, e) = e.
    merge(nil, ys) = ys.
    merge(xs, nil) = xs.
    merge(cons(x, xs), cons(y, ys)) =
        if(x =< y, cons(x, merge(xs, cons(y, ys))),
                   cons(y, merge(cons(x, xs), ys))).
    gen(0) = nil.
    gen(n) = cons(n mod 7, gen(n - 1)).
  )";
  auto R = inferOk(Mergesort);
  const FuncType *M = R.find("merge");
  ASSERT_NE(M, nullptr);
  ASSERT_TRUE(M->Ok) << M->Error;
  EXPECT_EQ(M->Rendered, "(list(int), list(int)) -> list(int)");
  const FuncType *G = R.find("gen");
  ASSERT_TRUE(G->Ok);
  EXPECT_EQ(G->Rendered, "(int) -> list(int)");
}

} // namespace
