//===- unify_test.cpp - Unification unit and property tests ----------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "reader/Parser.h"
#include "term/TermWriter.h"
#include "term/Unify.h"

#include <gtest/gtest.h>

#include <random>

using namespace lpa;

namespace {

/// Fixture with a shared symbol table / store and a term parser.
class UnifyTest : public ::testing::Test {
protected:
  TermRef parse(const char *Text) {
    auto T = Parser::parseTerm(Syms, S, Text);
    EXPECT_TRUE(T.hasValue()) << Text;
    return *T;
  }

  SymbolTable Syms;
  TermStore S;
};

TEST_F(UnifyTest, AtomsUnifyOnlyWithThemselves) {
  EXPECT_TRUE(unify(S, parse("a"), parse("a")));
  EXPECT_FALSE(unify(S, parse("a"), parse("b")));
}

TEST_F(UnifyTest, IntegersCompareByValue) {
  EXPECT_TRUE(unify(S, S.mkInt(3), S.mkInt(3)));
  EXPECT_FALSE(unify(S, S.mkInt(3), S.mkInt(4)));
  EXPECT_FALSE(unify(S, S.mkInt(3), parse("a")));
}

TEST_F(UnifyTest, VariableBindsToTerm) {
  TermRef V = S.mkVar();
  TermRef T = parse("f(a,b)");
  EXPECT_TRUE(unify(S, V, T));
  EXPECT_EQ(TermWriter::toString(Syms, S, V), "f(a,b)");
}

TEST_F(UnifyTest, StructuralDescent) {
  TermRef A = parse("f(X, g(X))");
  TermRef B = parse("f(a, g(Y))");
  EXPECT_TRUE(unify(S, A, B));
  // Both X and Y must now be a.
  std::string Rendered = TermWriter::toString(Syms, S, A);
  EXPECT_EQ(Rendered, "f(a,g(a))");
}

TEST_F(UnifyTest, FunctorMismatchFails) {
  EXPECT_FALSE(unify(S, parse("f(a)"), parse("g(a)")));
  EXPECT_FALSE(unify(S, parse("f(a)"), parse("f(a,b)")));
}

TEST_F(UnifyTest, SharedVariableConflictFails) {
  auto M = S.mark();
  // f(X, X) with f(a, b) must fail.
  EXPECT_FALSE(unify(S, parse("f(X, X)"), parse("f(a, b)")));
  S.undoTo(M);
}

TEST_F(UnifyTest, FailureIsUndoable) {
  TermRef T1 = parse("f(X, X)");
  auto M = S.mark();
  EXPECT_FALSE(unify(S, T1, parse("f(a, b)")));
  S.undoTo(M);
  // X is unbound again; a new consistent unification succeeds.
  EXPECT_TRUE(unify(S, T1, parse("f(c, c)")));
}

TEST_F(UnifyTest, OccursCheckRejectsCyclicBinding) {
  TermRef A = parse("X");
  TermRef B = parse("f(X)");
  // The two parses create distinct X variables; build a real cycle.
  TermRef V = S.mkVar();
  TermRef F = S.mkStruct(Syms.intern("f"), std::span<const TermRef>(&V, 1));
  EXPECT_FALSE(unify(S, V, F, /*OccursCheck=*/true));
  (void)A;
  (void)B;
}

TEST_F(UnifyTest, OccursCheckAllowsNonCyclic) {
  TermRef V = S.mkVar();
  TermRef T = parse("f(a)");
  EXPECT_TRUE(unify(S, V, T, /*OccursCheck=*/true));
}

TEST_F(UnifyTest, GroundDetection) {
  EXPECT_TRUE(isGround(S, parse("f(a, [1,2], g(b))")));
  EXPECT_FALSE(isGround(S, parse("f(a, X)")));
  TermRef V = S.mkVar();
  EXPECT_FALSE(isGround(S, V));
  S.bind(V, parse("a"));
  EXPECT_TRUE(isGround(S, V));
}

TEST_F(UnifyTest, TermsEqualIsStructural) {
  EXPECT_TRUE(termsEqual(S, parse("f(a, 1)"), parse("f(a, 1)")));
  EXPECT_FALSE(termsEqual(S, parse("f(a, 1)"), parse("f(a, 2)")));
  // Distinct unbound variables are not ==.
  EXPECT_FALSE(termsEqual(S, parse("X"), parse("Y")));
  TermRef V = S.mkVar();
  EXPECT_TRUE(termsEqual(S, V, V));
}

TEST_F(UnifyTest, OccursInFindsDeepOccurrences) {
  TermRef V = S.mkVar();
  std::vector<TermRef> Elems{S.mkInt(1), V};
  TermRef L = S.mkList(Syms, Elems);
  EXPECT_TRUE(occursIn(S, V, L));
  EXPECT_FALSE(occursIn(S, S.mkVar(), L));
}

//===----------------------------------------------------------------------===//
// Property tests: random term pairs
//===----------------------------------------------------------------------===//

/// Builds a random term over a small signature with variables drawn from
/// \p Vars.
TermRef randomTerm(TermStore &S, SymbolTable &Syms, std::mt19937 &Rng,
                   std::vector<TermRef> &Vars, int Depth) {
  std::uniform_int_distribution<int> Pick(0, Depth <= 0 ? 2 : 4);
  switch (Pick(Rng)) {
  case 0: { // Variable (shared pool).
    if (Vars.empty() || Rng() % 3 == 0)
      Vars.push_back(S.mkVar());
    return Vars[Rng() % Vars.size()];
  }
  case 1:
    return S.mkAtom(Syms.intern(Rng() % 2 ? "a" : "b"));
  case 2:
    return S.mkInt(static_cast<int64_t>(Rng() % 3));
  case 3: {
    TermRef A = randomTerm(S, Syms, Rng, Vars, Depth - 1);
    return S.mkStruct(Syms.intern("s"), std::span<const TermRef>(&A, 1));
  }
  default: {
    TermRef A = randomTerm(S, Syms, Rng, Vars, Depth - 1);
    TermRef B = randomTerm(S, Syms, Rng, Vars, Depth - 1);
    return S.mkStruct2(Syms.intern(Rng() % 2 ? "f" : "g"), A, B);
  }
  }
}

class UnifyPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(UnifyPropertyTest, UnifiedTermsAreEqualAfterwards) {
  SymbolTable Syms;
  TermStore S;
  std::mt19937 Rng(GetParam());
  std::vector<TermRef> Vars;
  TermRef A = randomTerm(S, Syms, Rng, Vars, 4);
  TermRef B = randomTerm(S, Syms, Rng, Vars, 4);
  auto M = S.mark();
  if (unify(S, A, B)) {
    EXPECT_TRUE(termsEqual(S, A, B));
  }
  S.undoTo(M);
}

TEST_P(UnifyPropertyTest, UnificationIsSymmetric) {
  SymbolTable Syms;
  TermStore S;
  std::mt19937 Rng(GetParam());
  std::vector<TermRef> Vars;
  TermRef A = randomTerm(S, Syms, Rng, Vars, 4);
  TermRef B = randomTerm(S, Syms, Rng, Vars, 4);
  auto M = S.mark();
  bool AB = unify(S, A, B);
  S.undoTo(M);
  bool BA = unify(S, B, A);
  S.undoTo(M);
  EXPECT_EQ(AB, BA);
}

TEST_P(UnifyPropertyTest, UndoIsComplete) {
  SymbolTable Syms;
  TermStore S;
  std::mt19937 Rng(GetParam());
  std::vector<TermRef> Vars;
  TermRef A = randomTerm(S, Syms, Rng, Vars, 4);
  TermRef B = randomTerm(S, Syms, Rng, Vars, 4);
  size_t HeapBefore = S.size();
  auto M = S.mark();
  unify(S, A, B);
  S.undoTo(M);
  EXPECT_EQ(S.size(), HeapBefore);
  for (TermRef V : Vars)
    if (S.deref(V) == V) {
      EXPECT_TRUE(S.isUnboundVar(V));
    }
}

TEST_P(UnifyPropertyTest, OccursCheckImpliesAcyclicSuccess) {
  SymbolTable Syms;
  TermStore S;
  std::mt19937 Rng(GetParam() + 1000);
  std::vector<TermRef> Vars;
  TermRef A = randomTerm(S, Syms, Rng, Vars, 4);
  TermRef B = randomTerm(S, Syms, Rng, Vars, 4);
  auto M = S.mark();
  if (unify(S, A, B, /*OccursCheck=*/true)) {
    // With occur check the result must be finite: termSizeCells terminates
    // and ground-checking cannot loop.
    (void)isGround(S, A);
    SUCCEED();
  }
  S.undoTo(M);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, UnifyPropertyTest,
                         ::testing::Range(0u, 50u));

} // namespace
