//===- variant_test.cpp - Variant check / canonical key tests --------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "reader/Parser.h"
#include "term/Variant.h"

#include <gtest/gtest.h>

#include <random>

using namespace lpa;

namespace {

class VariantTest : public ::testing::Test {
protected:
  TermRef parse(const char *Text) {
    auto T = Parser::parseTerm(Syms, S, Text);
    EXPECT_TRUE(T.hasValue()) << Text;
    return *T;
  }

  SymbolTable Syms;
  TermStore S;
};

TEST_F(VariantTest, IdenticalGroundTermsAreVariants) {
  EXPECT_TRUE(isVariant(S, parse("f(a, 1)"), parse("f(a, 1)")));
}

TEST_F(VariantTest, RenamedVariablesAreVariants) {
  EXPECT_TRUE(isVariant(S, parse("f(X, Y)"), parse("f(A, B)")));
  EXPECT_TRUE(isVariant(S, parse("f(X, X)"), parse("f(A, A)")));
}

TEST_F(VariantTest, SharingPatternMatters) {
  // f(X, X) and f(A, B) are NOT variants: the renaming must be 1-1.
  EXPECT_FALSE(isVariant(S, parse("f(X, X)"), parse("f(A, B)")));
  EXPECT_FALSE(isVariant(S, parse("f(X, Y)"), parse("f(A, A)")));
}

TEST_F(VariantTest, InstancesAreNotVariants) {
  EXPECT_FALSE(isVariant(S, parse("f(X)"), parse("f(a)")));
  EXPECT_FALSE(isVariant(S, parse("f(a)"), parse("f(X)")));
}

TEST_F(VariantTest, SwappedDistinctVariablesAreVariants) {
  // f(X, Y) vs f(Y, X): both are "two distinct variables".
  TermRef A = parse("f(X, Y)");
  TermRef B = parse("f(Y2, X2)");
  EXPECT_TRUE(isVariant(S, A, B));
}

TEST_F(VariantTest, BoundVariablesCompareByValue) {
  TermRef A = parse("f(X)");
  S.bind(S.deref(S.arg(A, 0)), parse("a"));
  EXPECT_TRUE(isVariant(S, A, parse("f(a)")));
  EXPECT_FALSE(isVariant(S, A, parse("f(b)")));
}

TEST_F(VariantTest, CanonicalKeyAgreesWithIsVariant) {
  const char *Terms[] = {
      "f(X, Y)", "f(A, A)", "f(a, b)", "f(X, b)", "g(X, Y)",
      "f(X, Y, Z)", "f([1,2|T], T)", "f([1,2|T], S)",
  };
  for (const char *TA : Terms) {
    for (const char *TB : Terms) {
      TermRef A = parse(TA), B = parse(TB);
      EXPECT_EQ(canonicalKey(S, A) == canonicalKey(S, B), isVariant(S, A, B))
          << TA << " vs " << TB;
    }
  }
}

TEST_F(VariantTest, KeyDistinguishesIntsFromAtoms) {
  // 1 the integer vs '1'-like atoms must not collide.
  EXPECT_NE(canonicalKey(S, S.mkInt(1)), canonicalKey(S, parse("a")));
}

TEST_F(VariantTest, KeyIsStableUnderCopies) {
  TermStore S2;
  TermRef A = parse("p(f(X), Y, X)");
  auto Key1 = canonicalKey(S, A);
  auto Parsed2 = Parser::parseTerm(Syms, S2, "p(f(Q), R, Q)");
  ASSERT_TRUE(Parsed2.hasValue());
  EXPECT_EQ(Key1, canonicalKey(S2, *Parsed2));
}

TEST(VariantProperty, ReflexiveOnRandomTerms) {
  SymbolTable Syms;
  TermStore S;
  std::mt19937 Rng(7);
  for (int Round = 0; Round < 100; ++Round) {
    // Random nested term with shared variables.
    std::vector<TermRef> Vars{S.mkVar(), S.mkVar()};
    TermRef T = S.mkVar();
    for (int I = 0; I < 5; ++I) {
      TermRef Leaf = Vars[Rng() % Vars.size()];
      T = S.mkStruct2(Syms.intern("f"), T, Leaf);
    }
    EXPECT_TRUE(isVariant(S, T, T));
    EXPECT_EQ(canonicalKey(S, T), canonicalKey(S, T));
  }
}

} // namespace
