//===- wam_machine_test.cpp - WAM-lite executor tests -------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"
#include "wamlite/WamMachine.h"

#include <gtest/gtest.h>

#include <set>

using namespace lpa;

namespace {

class WamMachineTest : public ::testing::Test {
protected:
  /// Compiles Program and collects rendered solutions of Goal.
  std::set<std::string> run(const char *Program, const char *Goal) {
    WamCompiler Compiler(Syms);
    auto P = Compiler.compileText(Program);
    EXPECT_TRUE(P.hasValue()) << (P ? "" : P.getError().str());
    if (!P)
      return {};
    WamMachine M(Syms, *P);
    auto G = Parser::parseTerm(Syms, M.store(), Goal);
    EXPECT_TRUE(G.hasValue());
    std::set<std::string> Out;
    M.solve(*G, [&]() {
      Out.insert(TermWriter::toString(Syms, M.store(), *G));
      return false;
    });
    return Out;
  }

  /// Solutions from the interpretive engine, for cross-checking.
  std::set<std::string> runInterp(const char *Program, const char *Goal) {
    Database DB(Syms);
    auto L = DB.consult(Program);
    EXPECT_TRUE(L.hasValue());
    Solver S(DB);
    auto G = Parser::parseTerm(Syms, S.store(), Goal);
    EXPECT_TRUE(G.hasValue());
    std::set<std::string> Out;
    S.solve(*G, [&]() {
      Out.insert(TermWriter::toString(Syms, S.storeConst(), *G));
      return false;
    });
    return Out;
  }

  SymbolTable Syms;
};

TEST_F(WamMachineTest, FactsMatch) {
  auto Sols = run("p(a). p(b). p(f(c)).", "p(X)");
  EXPECT_EQ(Sols, (std::set<std::string>{"p(a)", "p(b)", "p(f(c))"}));
  EXPECT_EQ(run("p(a).", "p(b)").size(), 0u);
}

TEST_F(WamMachineTest, AppendForward) {
  const char *Ap = R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )";
  auto Sols = run(Ap, "ap([1,2], [3,4], Z)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(*Sols.begin(), "ap([1,2],[3,4],[1,2,3,4])");
}

TEST_F(WamMachineTest, AppendBackward) {
  const char *Ap = R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )";
  // All 4 splits of a 3-element list.
  EXPECT_EQ(run(Ap, "ap(X, Y, [1,2,3])").size(), 4u);
}

TEST_F(WamMachineTest, ArithmeticBuiltins) {
  const char *Prog = R"(
    fact(0, 1).
    fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
  )";
  auto Sols = run(Prog, "fact(6, F)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(*Sols.begin(), "fact(6,720)");
}

TEST_F(WamMachineTest, StructuresRoundTrip) {
  const char *Prog = R"(
    mk(X, Y, pair(f(X), g(Y, c))).
    un(pair(A, B), A, B).
  )";
  auto Sols = run(Prog, "mk(1, 2, P)");
  ASSERT_EQ(Sols.size(), 1u);
  EXPECT_EQ(*Sols.begin(), "mk(1,2,pair(f(1),g(2,c)))");
  auto Sols2 = run(Prog, "un(pair(f(7), w), A, B)");
  ASSERT_EQ(Sols2.size(), 1u);
  EXPECT_EQ(*Sols2.begin(), "un(pair(f(7),w),f(7),w)");
}

TEST_F(WamMachineTest, PermanentVariablesSurviveCalls) {
  const char *Prog = R"(
    p(X, Z) :- q(X, Y), r(Y, Z).
    q(a, m). q(b, n).
    r(m, 1). r(n, 2).
  )";
  auto Sols = run(Prog, "p(A, B)");
  EXPECT_EQ(Sols, (std::set<std::string>{"p(a,1)", "p(b,2)"}));
}

TEST_F(WamMachineTest, StopRequestHonored) {
  WamCompiler Compiler(Syms);
  auto P = Compiler.compileText("p(1). p(2). p(3).");
  ASSERT_TRUE(P.hasValue());
  WamMachine M(Syms, *P);
  auto G = Parser::parseTerm(Syms, M.store(), "p(X)");
  size_t N = M.solve(*G, []() { return true; });
  EXPECT_EQ(N, 1u);
}

TEST_F(WamMachineTest, NondeterministicJoin) {
  const char *Prog = R"(
    grand(X, Z) :- par(X, Y), par(Y, Z).
    par(a, b). par(b, c). par(b, d). par(a, e). par(e, f).
  )";
  auto Sols = run(Prog, "grand(a, Z)");
  EXPECT_EQ(Sols, (std::set<std::string>{"grand(a,c)", "grand(a,d)",
                                         "grand(a,f)"}));
}

/// The executor and the interpreter must agree on the pure subset.
struct AgreementCase {
  const char *Name;
  const char *Program;
  const char *Goal;
};

class WamAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(WamAgreementTest, MatchesInterpreter) {
  const auto &C = GetParam();
  SymbolTable Syms;

  WamCompiler Compiler(Syms);
  auto P = Compiler.compileText(C.Program);
  ASSERT_TRUE(P.hasValue());
  WamMachine M(Syms, *P);
  auto G1 = Parser::parseTerm(Syms, M.store(), C.Goal);
  std::set<std::string> Compiled;
  M.solve(*G1, [&]() {
    Compiled.insert(TermWriter::toString(Syms, M.store(), *G1));
    return false;
  });

  Database DB(Syms);
  ASSERT_TRUE(DB.consult(C.Program).hasValue());
  Solver S(DB);
  auto G2 = Parser::parseTerm(Syms, S.store(), C.Goal);
  std::set<std::string> Interpreted;
  S.solve(*G2, [&]() {
    Interpreted.insert(TermWriter::toString(Syms, S.storeConst(), *G2));
    return false;
  });

  EXPECT_EQ(Compiled, Interpreted) << C.Name;
}

const AgreementCase AgreementCases[] = {
    {"naive_reverse",
     "nrev([], []).\n"
     "nrev([X|Xs], R) :- nrev(Xs, T), app(T, [X], R).\n"
     "app([], Y, Y).\n"
     "app([X|Xs], Y, [X|Z]) :- app(Xs, Y, Z).\n",
     "nrev([1,2,3,4,5], R)"},
    {"qsort",
     "qs([], []).\n"
     "qs([X|Xs], S) :- part(Xs, X, L, G), qs(L, SL), qs(G, SG), "
     "  app(SL, [X|SG], S).\n"
     "part([], P, [], []).\n"
     "part([Y|Ys], P, [Y|L], G) :- Y =< P, part(Ys, P, L, G).\n"
     "part([Y|Ys], P, L, [Y|G]) :- Y > P, part(Ys, P, L, G).\n"
     "app([], Y, Y).\n"
     "app([X|Xs], Y, [X|Z]) :- app(Xs, Y, Z).\n",
     "qs([3,1,4,1,5,9,2,6], S)"},
    {"dag_paths",
     "path(X, Y) :- edge(X, Y).\n"
     "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
     "edge(a, b). edge(a, c). edge(b, d). edge(c, d). edge(d, e).\n",
     "path(a, N)"},
    {"peano_plus",
     "plus(z, Y, Y). plus(s(X), Y, s(Z)) :- plus(X, Y, Z).",
     "plus(X, Y, s(s(s(z))))"},
    {"member_generate",
     "mem(X, [X|_]). mem(X, [_|T]) :- mem(X, T).",
     "mem(M, [q, w, e])"},
};

INSTANTIATE_TEST_SUITE_P(Programs, WamAgreementTest,
                         ::testing::ValuesIn(AgreementCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
