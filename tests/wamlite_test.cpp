//===- wamlite_test.cpp - WAM-lite compiler tests ----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "wamlite/WamCompiler.h"

#include <gtest/gtest.h>

using namespace lpa;

namespace {

class WamTest : public ::testing::Test {
protected:
  CompiledProgram compile(const char *Source) {
    WamCompiler C(Syms);
    auto P = C.compileText(Source);
    EXPECT_TRUE(P.hasValue()) << (P ? "" : P.getError().str());
    return P ? std::move(*P) : CompiledProgram();
  }

  std::string disasm(const char *Source) {
    WamCompiler C(Syms);
    auto P = C.compileText(Source);
    EXPECT_TRUE(P.hasValue());
    std::string Out;
    for (const CompiledClause &Cl : P->Clauses)
      Out += C.disassemble(Cl);
    return Out;
  }

  SymbolTable Syms;
};

TEST_F(WamTest, FactCompilesToGetsAndProceed) {
  auto P = compile("p(a, 42).");
  ASSERT_EQ(P.Clauses.size(), 1u);
  const auto &Code = P.Clauses[0].Code;
  ASSERT_EQ(Code.size(), 3u);
  EXPECT_EQ(Code[0].Op, WamOp::GetConstant);
  EXPECT_EQ(Code[1].Op, WamOp::GetInteger);
  EXPECT_EQ(Code[1].Imm, 42);
  EXPECT_EQ(Code[2].Op, WamOp::Proceed);
}

TEST_F(WamTest, VariableHeadUsesGetVariableThenGetValue) {
  auto P = compile("p(X, X).");
  const auto &Code = P.Clauses[0].Code;
  ASSERT_EQ(Code.size(), 3u);
  EXPECT_EQ(Code[0].Op, WamOp::GetVariable);
  EXPECT_EQ(Code[1].Op, WamOp::GetValue);
  EXPECT_EQ(Code[0].Reg, Code[1].Reg);
}

TEST_F(WamTest, StructureHeadFlattens) {
  std::string D = disasm("p(f(X, g(a))).");
  // get_structure f/2, A0; unify_variable X...; unify_variable temp;
  // get_structure g/1, temp; unify_constant a.
  EXPECT_NE(D.find("get_structure f/2, X0"), std::string::npos) << D;
  EXPECT_NE(D.find("get_structure g/1"), std::string::npos) << D;
  EXPECT_NE(D.find("unify_constant a"), std::string::npos) << D;
}

TEST_F(WamTest, RuleEmitsCallsWithLastCallOptimization) {
  auto P = compile("p(X) :- q(X), r(X).");
  const auto &C = P.Clauses[0];
  // X occurs in chunk 0 (head+q) and chunk 1 (r): permanent.
  EXPECT_EQ(C.NumPermanent, 1u);
  ASSERT_GE(C.Code.size(), 5u);
  EXPECT_EQ(C.Code.front().Op, WamOp::Allocate);
  EXPECT_EQ(C.Code[C.Code.size() - 2].Op, WamOp::Deallocate);
  EXPECT_EQ(C.Code.back().Op, WamOp::Execute);
  bool HasCall = false;
  for (const auto &I : C.Code)
    HasCall |= I.Op == WamOp::Call;
  EXPECT_TRUE(HasCall);
}

TEST_F(WamTest, ChainedGoalWithoutSharedVarsHasNoEnvironment) {
  auto P = compile("p(X) :- q(X).");
  // X lives only in chunk 0 (head + first goal): temporary.
  EXPECT_EQ(P.Clauses[0].NumPermanent, 0u);
  EXPECT_EQ(P.Clauses[0].Code.back().Op, WamOp::Execute);
}

TEST_F(WamTest, BodyStructureBuildsBottomUp) {
  std::string D = disasm("p(X) :- q(f(g(X), b)).");
  size_t G = D.find("put_structure g/1");
  size_t F = D.find("put_structure f/2");
  ASSERT_NE(G, std::string::npos) << D;
  ASSERT_NE(F, std::string::npos) << D;
  EXPECT_LT(G, F) << "inner structure must be built first\n" << D;
  EXPECT_NE(D.find("set_constant b"), std::string::npos);
}

TEST_F(WamTest, AppendCompilesLikeTheTextbook) {
  std::string D = disasm(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  // Clause 1: get_constant [], A0; get_variable; get_value; proceed.
  EXPECT_NE(D.find("get_constant []"), std::string::npos) << D;
  // Clause 2: list cells are './2' structures; recursive call via execute.
  EXPECT_NE(D.find("get_structure ./2, X0"), std::string::npos) << D;
  EXPECT_NE(D.find("get_structure ./2, X2"), std::string::npos) << D;
  EXPECT_NE(D.find("execute ap/3"), std::string::npos) << D;
}

TEST_F(WamTest, DirectivesAreSkipped) {
  auto P = compile(":- table foo/1.\np(a).");
  EXPECT_EQ(P.Clauses.size(), 1u);
}

TEST_F(WamTest, InstructionAndByteCounts) {
  auto P = compile("p(a). q(b) :- p(a).");
  EXPECT_GT(P.totalInstructions(), 3u);
  EXPECT_EQ(P.codeBytes(), P.totalInstructions() * sizeof(WamInstr));
}

TEST_F(WamTest, WholeCorpusCompiles) {
  for (const CorpusProgram &Prog : prologBenchmarks()) {
    WamCompiler C(Syms);
    auto P = C.compileText(Prog.Source);
    ASSERT_TRUE(P.hasValue())
        << Prog.Name << ": " << P.getError().str();
    EXPECT_GT(P->totalInstructions(), 50u) << Prog.Name;
    // Every clause ends in a control instruction.
    for (const CompiledClause &Cl : P->Clauses) {
      ASSERT_FALSE(Cl.Code.empty());
      WamOp Last = Cl.Code.back().Op;
      EXPECT_TRUE(Last == WamOp::Proceed || Last == WamOp::Execute)
          << Prog.Name;
    }
  }
}

TEST_F(WamTest, PermanentVariablesGetYRegisters) {
  std::string D = disasm("p(X, Y) :- q(X, Z), r(Y, Z).");
  // Y and Z span chunks; X does not.
  EXPECT_NE(D.find("Y0"), std::string::npos) << D;
  EXPECT_NE(D.find("Y1"), std::string::npos) << D;
  EXPECT_NE(D.find("allocate 2"), std::string::npos) << D;
}

} // namespace
