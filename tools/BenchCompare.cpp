//===- BenchCompare.cpp - Bench trajectory regression gate -------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "tools/BenchCompare.h"

#include "obs/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <map>

using namespace lpa;

namespace {

/// Classifies a member key as a gated metric, or not one.
enum class KeyClass { NotMetric, WallMs, Bytes };

KeyClass classifyKey(std::string_view Key) {
  auto EndsWith = [&](std::string_view Suffix) {
    return Key.size() >= Suffix.size() &&
           Key.substr(Key.size() - Suffix.size()) == Suffix;
  };
  if (EndsWith("_ms") || Key == "real_time" || Key == "cpu_time")
    return KeyClass::WallMs;
  // Percentages that merely *mention* a metric are derived, not gated.
  if (EndsWith("_bytes"))
    return KeyClass::Bytes;
  return KeyClass::NotMetric;
}

struct Metric {
  KeyClass Class;
  double Value;
};

/// Flattens every gated numeric metric of \p V into \p Out keyed by dotted
/// path. sample_profile subtrees are skipped — sampled maxima and counts
/// are statistical and gate nothing.
void collectMetrics(const JsonValue &V, const std::string &Path,
                    std::map<std::string, Metric> &Out) {
  if (V.isObject()) {
    for (const auto &[Key, Member] : V.members()) {
      if (Key == "sample_profile")
        continue;
      std::string Sub = Path.empty() ? Key : Path + "." + Key;
      KeyClass KC = classifyKey(Key);
      if (KC != KeyClass::NotMetric && Member.isNumber()) {
        Out.emplace(Sub, Metric{KC, Member.asNumber()});
        continue;
      }
      collectMetrics(Member, Sub, Out);
    }
    return;
  }
  if (V.isArray()) {
    const auto &Items = V.items();
    for (size_t I = 0; I < Items.size(); ++I) {
      // google-benchmark arrays carry a "name" per element; table-driver
      // row arrays carry "program". Either beats a bare index — rows stay
      // aligned when the corpus gains or reorders entries.
      std::string Label = Items[I].stringOr("name", "");
      if (Label.empty())
        Label = Items[I].stringOr("program", "");
      std::string Sub = Path + "[" +
                        (Label.empty() ? std::to_string(I) : Label) + "]";
      collectMetrics(Items[I], Sub, Out);
    }
  }
}

/// Extracts "path of block" -> (stack string -> share pct) for every
/// sample_profile block in \p V.
void collectProfiles(const JsonValue &V, const std::string &Path,
                     std::map<std::string, std::map<std::string, double>> &Out) {
  if (V.isObject()) {
    for (const auto &[Key, Member] : V.members()) {
      std::string Sub = Path.empty() ? Key : Path + "." + Key;
      if (Key == "sample_profile" && Member.isObject()) {
        double Total = Member.numberOr("total_samples", 0);
        const JsonValue *Stacks = Member.find("stacks");
        if (Total <= 0 || !Stacks || !Stacks->isArray())
          continue;
        std::map<std::string, double> &Shares = Out[Sub];
        for (const JsonValue &S : Stacks->items()) {
          std::string Label = S.stringOr("lane", "?");
          const JsonValue *Frames = S.find("frames");
          if (Frames && Frames->isArray())
            for (const JsonValue &F : Frames->items())
              Label += ";" + F.asString();
          Label += ";[" + S.stringOr("phase", "?") + "]";
          Shares[Label] += S.numberOr("count", 0) / Total * 100.0;
        }
        continue;
      }
      collectProfiles(Member, Sub, Out);
    }
    return;
  }
  if (V.isArray()) {
    const auto &Items = V.items();
    for (size_t I = 0; I < Items.size(); ++I)
      collectProfiles(Items[I], Path + "[" + std::to_string(I) + "]", Out);
  }
}

} // namespace

CompareReport lpa::compareBenchJson(const JsonValue &Base,
                                    const JsonValue &Cur,
                                    const CompareOptions &Opts) {
  CompareReport R;

  std::map<std::string, Metric> BaseM, CurM;
  collectMetrics(Base, "", BaseM);
  collectMetrics(Cur, "", CurM);

  for (const auto &[Path, BM] : BaseM) {
    auto It = CurM.find(Path);
    if (It == CurM.end()) {
      R.OnlyInBase.push_back(Path);
      continue;
    }
    const Metric &CM = It->second;
    MetricDelta D;
    D.Path = Path;
    D.MetricKind = BM.Class == KeyClass::Bytes ? MetricDelta::Kind::Bytes
                                               : MetricDelta::Kind::WallMs;
    D.Base = BM.Value;
    D.Current = CM.Value;
    D.DeltaPct = BM.Value > 0 ? (CM.Value - BM.Value) / BM.Value * 100.0 : 0;
    bool IsBytes = BM.Class == KeyClass::Bytes;
    double Threshold = IsBytes ? Opts.BytesThresholdPct
                               : Opts.WallThresholdPct;
    double Floor = IsBytes ? Opts.BytesFloor : Opts.WallFloorMs;
    D.Regressed = BM.Value >= Floor && D.DeltaPct > Threshold;
    R.Deltas.push_back(std::move(D));
  }
  for (const auto &[Path, CM] : CurM)
    if (!BaseM.count(Path))
      R.OnlyInCurrent.push_back(Path);

  // Profile shifts: union of each run's top-N stacks per block, reported
  // when the share moved at all (callers decide what is interesting).
  std::map<std::string, std::map<std::string, double>> BaseP, CurP;
  collectProfiles(Base, "", BaseP);
  collectProfiles(Cur, "", CurP);
  for (const auto &[Path, BaseShares] : BaseP) {
    auto It = CurP.find(Path);
    const std::map<std::string, double> Empty;
    const std::map<std::string, double> &CurShares =
        It == CurP.end() ? Empty : It->second;
    auto TopN = [&](const std::map<std::string, double> &M) {
      std::vector<std::pair<std::string, double>> V(M.begin(), M.end());
      std::stable_sort(V.begin(), V.end(), [](const auto &A, const auto &B) {
        return A.second > B.second;
      });
      if (V.size() > Opts.ProfileTopN)
        V.resize(Opts.ProfileTopN);
      return V;
    };
    std::map<std::string, bool> Union;
    for (const auto &[S, _] : TopN(BaseShares))
      Union[S] = true;
    for (const auto &[S, _] : TopN(CurShares))
      Union[S] = true;
    for (const auto &[Stack, _] : Union) {
      auto BIt = BaseShares.find(Stack);
      auto CIt = CurShares.find(Stack);
      ProfileShift PS;
      PS.Path = Path;
      PS.Stack = Stack;
      PS.BaseSharePct = BIt == BaseShares.end() ? 0 : BIt->second;
      PS.CurSharePct = CIt == CurShares.end() ? 0 : CIt->second;
      if (std::fabs(PS.CurSharePct - PS.BaseSharePct) > 0.01)
        R.ProfileShifts.push_back(std::move(PS));
    }
  }
  std::stable_sort(R.ProfileShifts.begin(), R.ProfileShifts.end(),
                   [](const ProfileShift &A, const ProfileShift &B) {
                     return std::fabs(A.CurSharePct - A.BaseSharePct) >
                            std::fabs(B.CurSharePct - B.BaseSharePct);
                   });
  return R;
}

std::string CompareReport::renderText(const CompareOptions &Opts) const {
  std::string Out;
  char Buf[512];
  auto Line = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out += Buf;
    Out += '\n';
  };

  size_t Regs = regressionCount();
  Line("bench_compare: %zu metric(s) compared, %zu regression(s) "
       "(thresholds: wall +%.0f%%, bytes +%.0f%%)",
       Deltas.size(), Regs, Opts.WallThresholdPct, Opts.BytesThresholdPct);

  for (const MetricDelta &D : Deltas)
    if (D.Regressed)
      Line("  REGRESSION %s: %.2f -> %.2f (%+.1f%%)", D.Path.c_str(), D.Base,
           D.Current, D.DeltaPct);

  // Largest non-gating moves, capped to keep logs readable.
  std::vector<const MetricDelta *> Moves;
  for (const MetricDelta &D : Deltas)
    if (!D.Regressed && std::fabs(D.DeltaPct) > 1.0)
      Moves.push_back(&D);
  std::stable_sort(Moves.begin(), Moves.end(),
                   [](const MetricDelta *A, const MetricDelta *B) {
                     return std::fabs(A->DeltaPct) > std::fabs(B->DeltaPct);
                   });
  size_t Shown = std::min<size_t>(Moves.size(), 10);
  if (Shown)
    Line("  largest non-gating moves:");
  for (size_t I = 0; I < Shown; ++I)
    Line("    %s: %.2f -> %.2f (%+.1f%%)", Moves[I]->Path.c_str(),
         Moves[I]->Base, Moves[I]->Current, Moves[I]->DeltaPct);

  for (size_t I = 0, E = std::min<size_t>(ProfileShifts.size(), 10); I < E;
       ++I) {
    const ProfileShift &PS = ProfileShifts[I];
    if (I == 0)
      Line("  profile share shifts (informational):");
    Line("    %s: %.1f%% -> %.1f%%  %s", PS.Path.c_str(), PS.BaseSharePct,
         PS.CurSharePct, PS.Stack.c_str());
  }

  // Schema drift is listed path by path: "3 metrics vanished" is not
  // actionable, "bench_x.total_ms vanished" is. Baseline-only entries are
  // the dangerous direction (a disappearing bench can hide a regression),
  // and gate under --strict.
  if (!OnlyInBase.empty()) {
    Line("  %zu metric(s) only in baseline (%s):", OnlyInBase.size(),
         Opts.StrictSchema ? "GATING under --strict" : "schema drift");
    for (const std::string &P : OnlyInBase)
      Line("    missing from current: %s", P.c_str());
  }
  if (!OnlyInCurrent.empty()) {
    Line("  %zu metric(s) only in current (new coverage):",
         OnlyInCurrent.size());
    for (const std::string &P : OnlyInCurrent)
      Line("    new: %s", P.c_str());
  }
  return Out;
}

std::string CompareReport::renderJson(const std::string &BaseName,
                                      const std::string &CurName) const {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("baseline", std::string_view(BaseName));
  W.member("current", std::string_view(CurName));
  W.member("metrics_compared", static_cast<uint64_t>(Deltas.size()));
  W.member("regressions", static_cast<uint64_t>(regressionCount()));
  W.key("deltas");
  W.beginArray();
  for (const MetricDelta &D : Deltas) {
    // Keep the record compact: only moves worth reading back.
    if (!D.Regressed && std::fabs(D.DeltaPct) <= 1.0)
      continue;
    W.beginObject();
    W.member("path", std::string_view(D.Path));
    W.member("kind",
             D.MetricKind == MetricDelta::Kind::Bytes ? "bytes" : "wall_ms");
    W.member("base", D.Base);
    W.member("current", D.Current);
    W.member("delta_pct", D.DeltaPct);
    W.member("regressed", D.Regressed);
    W.endObject();
  }
  W.endArray();
  W.key("profile_shifts");
  W.beginArray();
  for (size_t I = 0, E = std::min<size_t>(ProfileShifts.size(), 10); I < E;
       ++I) {
    const ProfileShift &PS = ProfileShifts[I];
    W.beginObject();
    W.member("path", std::string_view(PS.Path));
    W.member("stack", std::string_view(PS.Stack));
    W.member("base_share_pct", PS.BaseSharePct);
    W.member("cur_share_pct", PS.CurSharePct);
    W.endObject();
  }
  W.endArray();
  W.key("only_in_base");
  W.beginArray();
  for (const std::string &P : OnlyInBase)
    W.value(std::string_view(P));
  W.endArray();
  W.key("only_in_current");
  W.beginArray();
  for (const std::string &P : OnlyInCurrent)
    W.value(std::string_view(P));
  W.endArray();
  W.endObject();
  return Out;
}

bool lpa::appendTrajectoryLine(const std::string &TrajectoryPath,
                               const CompareReport &Report,
                               const std::string &BaseName,
                               const std::string &CurName) {
  std::string Record;
  JsonWriter W(Record);
  W.beginObject();
  std::time_t Now = std::time(nullptr);
  char Stamp[32] = "unknown";
  if (std::tm *UTC = std::gmtime(&Now))
    std::strftime(Stamp, sizeof(Stamp), "%Y-%m-%dT%H:%M:%SZ", UTC);
  W.member("timestamp_utc", Stamp);
  W.member("baseline", std::string_view(BaseName));
  W.member("current", std::string_view(CurName));
  W.member("metrics_compared", static_cast<uint64_t>(Report.Deltas.size()));
  W.member("regressions", static_cast<uint64_t>(Report.regressionCount()));
  W.key("regressed_paths");
  W.beginArray();
  for (const MetricDelta &D : Report.Deltas)
    if (D.Regressed)
      W.value(std::string_view(D.Path));
  W.endArray();
  W.endObject();

  std::FILE *F = std::fopen(TrajectoryPath.c_str(), "a");
  if (!F) {
    std::fprintf(stderr, "warning: cannot append to %s\n",
                 TrajectoryPath.c_str());
    return false;
  }
  std::fwrite(Record.data(), 1, Record.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  return true;
}
