//===- BenchCompare.h - Bench trajectory regression gate --------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diffs two bench trajectory JSON files (the table harnesses' --json
/// output, or google-benchmark's from bench_engine_micro) and gates on
/// regressions. The comparison is schema-light: both documents are walked
/// in parallel, and every numeric member whose key marks it as a
/// wall-clock ("*_ms", "real_time", "cpu_time") or table-space ("*_bytes")
/// metric is compared at its path. Array elements align by their "name"
/// member when present (google-benchmark's schema), by index otherwise.
///
/// Gating: a wall-clock metric regresses when it grows more than
/// WallThresholdPct over a baseline above the noise floor; table bytes
/// likewise with BytesThresholdPct. Improvements and sub-floor jitter are
/// reported but never gate. Sample-profile blocks ("sample_profile") are
/// compared by stack share — the top-N hottest paths of each run — and
/// shifts are informational only (sampling is statistical).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TOOLS_BENCHCOMPARE_H
#define LPA_TOOLS_BENCHCOMPARE_H

#include "support/JsonValue.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lpa {

/// Tunables for one comparison.
struct CompareOptions {
  /// Wall-clock growth above this percentage gates (ISSUE: 15%).
  double WallThresholdPct = 15.0;
  /// Table-byte growth above this percentage gates (ISSUE: 10%).
  double BytesThresholdPct = 10.0;
  /// Wall-clock baselines below this many ms are noise; never gate.
  double WallFloorMs = 1.0;
  /// Byte baselines below this are noise; never gate.
  double BytesFloor = 65536;
  /// Sample-profile stacks compared per lane-set (informational).
  size_t ProfileTopN = 10;
  /// Treat baseline-only metrics as failures (--strict). A bench that
  /// silently stops reporting a gated metric is a gate bypass: without
  /// this, deleting a slow bench "fixes" its regression.
  bool StrictSchema = false;
};

/// One compared metric.
struct MetricDelta {
  enum class Kind : uint8_t { WallMs, Bytes };
  std::string Path; ///< Dotted member path, e.g. "fleet.parallel_wall_ms".
  Kind MetricKind = Kind::WallMs;
  double Base = 0;
  double Current = 0;
  double DeltaPct = 0;   ///< (Current - Base) / Base * 100; 0 when Base==0.
  bool Regressed = false; ///< Above threshold and above the noise floor.
};

/// One sample-profile stack whose share of total samples shifted.
struct ProfileShift {
  std::string Path;  ///< Path of the sample_profile block.
  std::string Stack; ///< "lane;frame;frame;[phase]".
  double BaseSharePct = 0; ///< Of total samples; 0 = absent from that run.
  double CurSharePct = 0;
};

/// Result of comparing two trajectory documents.
struct CompareReport {
  std::vector<MetricDelta> Deltas;        ///< Every compared metric.
  std::vector<ProfileShift> ProfileShifts; ///< Top-N share changes.
  /// Metrics present in only one document (schema drift). Listed path by
  /// path in both renderings; baseline-only entries gate under
  /// CompareOptions::StrictSchema, current-only entries never do (new
  /// benches are how the trajectory grows).
  std::vector<std::string> OnlyInBase;
  std::vector<std::string> OnlyInCurrent;

  size_t regressionCount() const {
    size_t N = 0;
    for (const MetricDelta &D : Deltas)
      N += D.Regressed;
    return N;
  }
  bool hasRegressions() const { return regressionCount() != 0; }

  /// Whether the gate fails under \p Opts: metric regressions always;
  /// baseline-only metrics too when StrictSchema is set.
  bool fails(const CompareOptions &Opts) const {
    return hasRegressions() || (Opts.StrictSchema && !OnlyInBase.empty());
  }

  /// Human-readable report: regressions first, then the largest moves,
  /// then profile shifts and schema drift.
  std::string renderText(const CompareOptions &Opts) const;

  /// One JSON object (machine-readable report / trajectory line).
  std::string renderJson(const std::string &BaseName,
                         const std::string &CurName) const;
};

/// Compares two parsed trajectory documents.
CompareReport compareBenchJson(const JsonValue &Base, const JsonValue &Cur,
                               const CompareOptions &Opts);

/// Appends \p Report as one JSON-Lines record to \p TrajectoryPath
/// (creating the file if absent). The committed BENCH_TRAJECTORY.json at
/// the repo root accumulates one line per gated CI run.
bool appendTrajectoryLine(const std::string &TrajectoryPath,
                          const CompareReport &Report,
                          const std::string &BaseName,
                          const std::string &CurName);

} // namespace lpa

#endif // LPA_TOOLS_BENCHCOMPARE_H
