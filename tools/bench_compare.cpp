//===- bench_compare.cpp - CLI bench regression gate -------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Usage:
//   bench_compare BASELINE.json CURRENT.json
//       [--wall-threshold PCT] [--bytes-threshold PCT]
//       [--wall-floor-ms MS] [--bytes-floor N] [--top N]
//       [--report PATH] [--trajectory PATH]
//
// Exit status: 0 when no gated metric regressed, 1 on regression, 2 on
// usage or parse errors. CI runs the smoke fleet, compares against the
// previous run's artifact, and fails the job on exit 1.
//
//===----------------------------------------------------------------------===//

#include "tools/BenchCompare.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

using namespace lpa;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s BASELINE.json CURRENT.json [options]\n"
      "  --wall-threshold PCT   gate wall-clock growth above PCT (15)\n"
      "  --bytes-threshold PCT  gate table-byte growth above PCT (10)\n"
      "  --wall-floor-ms MS     ignore wall baselines below MS (1.0)\n"
      "  --bytes-floor N        ignore byte baselines below N (65536)\n"
      "  --top N                profile stacks compared per block (10)\n"
      "  --strict               fail when a baseline metric is missing\n"
      "                         from current (a vanished bench can hide a\n"
      "                         regression)\n"
      "  --report PATH          write a JSON report\n"
      "  --trajectory PATH      append a JSON-Lines trajectory record\n",
      Argv0);
  return 2;
}

bool parseDouble(std::string_view S, double &Out) {
  char *End = nullptr;
  std::string Copy(S);
  Out = std::strtod(Copy.c_str(), &End);
  return End && *End == '\0' && End != Copy.c_str();
}

} // namespace

int main(int argc, char **argv) {
  CompareOptions Opts;
  std::string BasePath, CurPath, ReportPath, TrajectoryPath;

  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    auto NextVal = [&](std::string_view &Out) {
      if (I + 1 >= argc)
        return false;
      Out = argv[++I];
      return true;
    };
    std::string_view V;
    if (A == "--wall-threshold" && NextVal(V)) {
      if (!parseDouble(V, Opts.WallThresholdPct))
        return usage(argv[0]);
    } else if (A == "--bytes-threshold" && NextVal(V)) {
      if (!parseDouble(V, Opts.BytesThresholdPct))
        return usage(argv[0]);
    } else if (A == "--wall-floor-ms" && NextVal(V)) {
      if (!parseDouble(V, Opts.WallFloorMs))
        return usage(argv[0]);
    } else if (A == "--bytes-floor" && NextVal(V)) {
      if (!parseDouble(V, Opts.BytesFloor))
        return usage(argv[0]);
    } else if (A == "--top" && NextVal(V)) {
      double N = 0;
      if (!parseDouble(V, N) || N < 1)
        return usage(argv[0]);
      Opts.ProfileTopN = static_cast<size_t>(N);
    } else if (A == "--strict") {
      Opts.StrictSchema = true;
    } else if (A == "--report" && NextVal(V)) {
      ReportPath = V;
    } else if (A == "--trajectory" && NextVal(V)) {
      TrajectoryPath = V;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option: %.*s\n", int(A.size()), A.data());
      return usage(argv[0]);
    } else if (BasePath.empty()) {
      BasePath = A;
    } else if (CurPath.empty()) {
      CurPath = A;
    } else {
      return usage(argv[0]);
    }
  }
  if (BasePath.empty() || CurPath.empty())
    return usage(argv[0]);

  auto BaseText = readFileText(BasePath);
  if (!BaseText) {
    std::fprintf(stderr, "error: %s\n", BaseText.getError().str().c_str());
    return 2;
  }
  auto CurText = readFileText(CurPath);
  if (!CurText) {
    std::fprintf(stderr, "error: %s\n", CurText.getError().str().c_str());
    return 2;
  }
  auto Base = JsonValue::parse(*BaseText);
  if (!Base) {
    std::fprintf(stderr, "error: %s: %s\n", BasePath.c_str(),
                 Base.getError().str().c_str());
    return 2;
  }
  auto Cur = JsonValue::parse(*CurText);
  if (!Cur) {
    std::fprintf(stderr, "error: %s: %s\n", CurPath.c_str(),
                 Cur.getError().str().c_str());
    return 2;
  }

  CompareReport Report = compareBenchJson(*Base, *Cur, Opts);
  std::fputs(Report.renderText(Opts).c_str(), stdout);

  if (!ReportPath.empty()) {
    std::FILE *F = std::fopen(ReportPath.c_str(), "w");
    if (F) {
      std::string Json = Report.renderJson(BasePath, CurPath);
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
      std::printf("[json] wrote %s\n", ReportPath.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", ReportPath.c_str());
    }
  }
  if (!TrajectoryPath.empty())
    appendTrajectoryLine(TrajectoryPath, Report, BasePath, CurPath);

  return Report.fails(Opts) ? 1 : 0;
}
