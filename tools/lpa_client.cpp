//===- lpa_client.cpp - Scripted client for lpa_serve -------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Drives a running lpa_serve over its Unix socket: reads JSON-lines
// requests from stdin (or --request flags, in order), sends each, prints
// each response to stdout, and VALIDATES it — every response must parse
// as JSON and carry "ok":true, or the client exits nonzero. That makes a
// shell pipeline into a protocol conformance check, which is exactly how
// the CI smoke job uses it.
//
// Usage:
//   lpa_client --socket PATH [--request 'JSON']... [--last FILE]
//              [--assert-nonzero DOTTED.PATH]...
//
//   --last FILE            write the final response line to FILE (the CI
//                          job uploads the stats snapshot this way)
//   --assert-nonzero P     after the run, require numeric field P (dotted
//                          path into the final response, e.g.
//                          "stats.warm_hits") to be > 0
//
// Exit: 0 all responses ok and assertions hold; 1 protocol/assertion
// failure; 2 usage or connection errors.
//
//===----------------------------------------------------------------------===//

#include "support/JsonValue.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lpa;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--request 'JSON']... [--last FILE]\n"
               "          [--assert-nonzero DOTTED.PATH]...\n"
               "Requests not given with --request are read from stdin, one\n"
               "JSON object per line.\n",
               Argv0);
  return 2;
}

int connectSocket(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Resolves "a.b.c" against a parsed response object.
const JsonValue *lookupDotted(const JsonValue &Root, std::string_view Path) {
  const JsonValue *V = &Root;
  while (!Path.empty()) {
    size_t Dot = Path.find('.');
    V = V->find(Path.substr(0, Dot));
    if (!V)
      return nullptr;
    Path = (Dot == std::string_view::npos) ? std::string_view()
                                           : Path.substr(Dot + 1);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, LastPath;
  std::vector<std::string> Requests;
  std::vector<std::string> NonzeroAsserts;

  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    if (A == "--socket" && I + 1 < argc)
      SocketPath = argv[++I];
    else if (A == "--request" && I + 1 < argc)
      Requests.push_back(argv[++I]);
    else if (A == "--last" && I + 1 < argc)
      LastPath = argv[++I];
    else if (A == "--assert-nonzero" && I + 1 < argc)
      NonzeroAsserts.push_back(argv[++I]);
    else
      return usage(argv[0]);
  }
  if (SocketPath.empty())
    return usage(argv[0]);

  int Fd = connectSocket(SocketPath);
  if (Fd < 0) {
    std::fprintf(stderr, "lpa_client: cannot connect to %s\n",
                 SocketPath.c_str());
    return 2;
  }
  std::FILE *In = ::fdopen(::dup(Fd), "r");
  std::FILE *Out = ::fdopen(Fd, "w");
  if (!In || !Out) {
    std::fprintf(stderr, "lpa_client: fdopen failed\n");
    return 2;
  }

  // With no --request flags, forward stdin lines.
  if (Requests.empty()) {
    std::string Line;
    int C;
    for (;;) {
      Line.clear();
      while ((C = std::fgetc(stdin)) != EOF && C != '\n')
        Line.push_back(static_cast<char>(C));
      if (!Line.empty())
        Requests.push_back(Line);
      if (C == EOF)
        break;
    }
  }

  int Rc = 0;
  std::string LastResponse;
  for (const std::string &Req : Requests) {
    if (Req.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::fwrite(Req.data(), 1, Req.size(), Out);
    std::fputc('\n', Out);
    std::fflush(Out);

    std::string Resp;
    int C;
    while ((C = std::fgetc(In)) != EOF && C != '\n')
      Resp.push_back(static_cast<char>(C));
    if (Resp.empty() && C == EOF) {
      std::fprintf(stderr, "lpa_client: server closed connection\n");
      Rc = 1;
      break;
    }
    std::printf("%s\n", Resp.c_str());
    LastResponse = Resp;

    auto Parsed = JsonValue::parse(Resp);
    if (!Parsed) {
      std::fprintf(stderr, "lpa_client: response is not valid JSON: %s\n",
                   Parsed.getError().str().c_str());
      Rc = 1;
      continue;
    }
    const JsonValue *Ok = Parsed->find("ok");
    if (!Ok || !Ok->asBool()) {
      const JsonValue *Err = Parsed->find("error");
      std::fprintf(stderr, "lpa_client: request failed: %s\n",
                   Err && Err->isString() ? Err->asString().c_str()
                                          : "(no error message)");
      Rc = 1;
    }
  }

  if (!LastPath.empty() && !LastResponse.empty()) {
    if (std::FILE *F = std::fopen(LastPath.c_str(), "w")) {
      std::fwrite(LastResponse.data(), 1, LastResponse.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "lpa_client: cannot write %s\n", LastPath.c_str());
      Rc = 1;
    }
  }

  if (!NonzeroAsserts.empty()) {
    auto Parsed = JsonValue::parse(LastResponse);
    for (const std::string &P : NonzeroAsserts) {
      const JsonValue *V = Parsed ? lookupDotted(*Parsed, P) : nullptr;
      double N = V && V->isNumber() ? V->asNumber() : 0;
      if (!(N > 0)) {
        std::fprintf(stderr, "lpa_client: assertion failed: %s = %g\n",
                     P.c_str(), N);
        Rc = 1;
      }
    }
  }

  std::fclose(In);
  std::fclose(Out);
  return Rc;
}
