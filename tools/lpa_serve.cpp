//===- lpa_serve.cpp - Long-lived analysis daemon -----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The analysis service the ROADMAP's north-star asks for, in daemon form:
// a persistent AnalysisSession (loaded program + warm tables + telemetry)
// behind the JSON-lines protocol (src/srv/Protocol.h), over stdin/stdout
// by default or a Unix socket with --socket. One client at a time — the
// engine is single-threaded; parallel service shards sessions (see
// src/par) rather than locking one.
//
// Usage:
//   lpa_serve [--socket PATH] [--log-level debug|info|warn|error]
//             [--provenance] [--record-costs] [--sample-hz N]
//             [--eval-workers N] [--slow-ms MS] [--slowlog-dir PATH]
//             [--dump-dir PATH] [--metrics-interval-ms N]
//
// Structured logs (JSON lines) go to stderr; protocol responses to the
// client. Exit: 0 on a clean "shutdown" verb or EOF, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "srv/Protocol.h"
#include "srv/Session.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lpa;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --socket PATH     serve on a Unix socket instead of stdio\n"
               "  --log-level LVL   debug|info|warn|error (info)\n"
               "  --provenance      record justifications (\":why\"-style)\n"
               "  --record-costs    per-subgoal cost profiles on every query\n"
               "                    (explain works without this; it attaches "
               "per query)\n"
               "  --sample-hz N     background sampling profiler rate (0)\n"
               "  --eval-workers N  intra-query parallel eval workers "
               "(0 = serial)\n"
               "  --slow-ms MS      slow-query capture threshold in ms\n"
               "                    (0 = adaptive vs rolling p95, the "
               "default; -1 = off)\n"
               "  --slowlog-dir PATH  persist slow-query exemplars in PATH\n"
               "                    and reload them on start\n"
               "  --dump-dir PATH   write post-mortem dumps (anomalies and\n"
               "                    fatal signals) into PATH\n"
               "  --metrics-interval-ms N  telemetry-ring sampling interval "
               "(1000)\n",
               Argv0);
  return 2;
}

/// Runs the request loop over stdio-style streams. \returns true when the
/// client asked for shutdown (as opposed to just disconnecting).
bool serveStream(AnalysisSession &Session, std::FILE *In, std::FILE *Out) {
  std::string Line;
  int C;
  bool Shutdown = false;
  while (!Shutdown) {
    Line.clear();
    while ((C = std::fgetc(In)) != EOF && C != '\n')
      Line.push_back(static_cast<char>(C));
    if (Line.empty() && C == EOF)
      break;
    if (Line.find_first_not_of(" \t\r") == std::string::npos) {
      if (C == EOF)
        break;
      continue; // Blank keep-alive line.
    }
    std::string Resp = handleRequestLine(Session, Line, Shutdown);
    Resp += '\n';
    std::fwrite(Resp.data(), 1, Resp.size(), Out);
    std::fflush(Out);
    if (C == EOF)
      break;
  }
  return Shutdown;
}

int serveSocket(AnalysisSession &Session, Logger &Log,
                const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Log.error("socket() failed", {{"errno", int64_t(errno)}});
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Log.error("socket path too long", {{"path", Path}});
    return 2;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // Stale socket from a previous run.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 4) < 0) {
    Log.error("bind/listen failed",
              {{"path", Path}, {"errno", int64_t(errno)}});
    ::close(Fd);
    return 1;
  }
  Log.info("listening", {{"socket", Path}});

  bool Shutdown = false;
  while (!Shutdown) {
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      Log.error("accept failed", {{"errno", int64_t(errno)}});
      break;
    }
    Log.debug("client connected");
    // Separate FILE streams for the two directions; fdopen owns and
    // closes its fd, so the read side gets a dup.
    std::FILE *In = ::fdopen(::dup(Client), "r");
    std::FILE *Out = ::fdopen(Client, "w");
    if (!In || !Out) {
      if (In)
        std::fclose(In);
      else
        ::close(Client);
      if (Out)
        std::fclose(Out);
      continue;
    }
    Shutdown = serveStream(Session, In, Out);
    std::fclose(In);
    std::fclose(Out);
    Log.debug("client disconnected",
              {{"queries_served", Session.queriesServed()}});
  }
  ::close(Fd);
  ::unlink(Path.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath;
  LogLevel Level = LogLevel::Info;
  AnalysisSession::Options SO;
  SO.SampleLane = "serve";

  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    if (A == "--socket" && I + 1 < argc) {
      SocketPath = argv[++I];
    } else if (A == "--log-level" && I + 1 < argc) {
      if (!parseLogLevel(argv[++I], Level))
        return usage(argv[0]);
    } else if (A == "--provenance") {
      SO.RecordProvenance = true;
    } else if (A == "--record-costs") {
      SO.RecordCosts = true;
    } else if (A == "--sample-hz" && I + 1 < argc) {
      SO.SampleHz = static_cast<uint32_t>(std::strtoul(argv[++I], nullptr, 10));
    } else if (A == "--eval-workers" && I + 1 < argc) {
      SO.EvalWorkers = std::strtoul(argv[++I], nullptr, 10);
    } else if (A == "--slow-ms" && I + 1 < argc) {
      SO.SlowLog.ThresholdMs = std::strtod(argv[++I], nullptr);
    } else if (A == "--slowlog-dir" && I + 1 < argc) {
      SO.SlowLog.Dir = argv[++I];
    } else if (A == "--dump-dir" && I + 1 < argc) {
      SO.Recorder.DumpDir = argv[++I];
    } else if (A == "--metrics-interval-ms" && I + 1 < argc) {
      SO.History.IntervalMs = std::strtoull(argv[++I], nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  Logger Log(stderr, Level);
  SO.Log = &Log;
  AnalysisSession Session(SO);
  // Fatal-signal black box: with a dump directory configured, a crash
  // still leaves the flight-recorder tail on disk (async-signal-safe
  // path; the handler re-raises after writing).
  if (!SO.Recorder.DumpDir.empty())
    FlightRecorder::installSignalDump(&Session.flightRecorder());
  Log.info("lpa_serve up",
           {{"transport", SocketPath.empty() ? "stdio" : "socket"},
            {"sample_hz", uint64_t(SO.SampleHz)},
            {"provenance", SO.RecordProvenance},
            {"eval_workers", uint64_t(SO.EvalWorkers)}});

  int Rc = 0;
  if (SocketPath.empty())
    serveStream(Session, stdin, stdout);
  else
    Rc = serveSocket(Session, Log, SocketPath);
  Log.info("lpa_serve down",
           {{"queries_served", Session.queriesServed()}});
  return Rc;
}
