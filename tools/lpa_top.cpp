//===- lpa_top.cpp - Live table-space viewer for lpa_serve ---------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// top(1) for a warm analysis session: connects to a running lpa_serve,
// issues the "inspect" verb (schema lpa.inspect.v1), and renders the
// answer as aligned text — top-N tables by bytes or answers, per-predicate
// warm-hit rates, shared-space shard contention, dependency-index size,
// and the flight-recorder tail counters. This is the operator's view of
// the same data the eviction/shard-tuning work consumes programmatically.
//
// Usage:
//   lpa_top --socket PATH [--top N] [--sort bytes|answers|contention]
//           [--watch SECS]
//
// With --watch the client keeps the connection open and refreshes every
// SECS seconds (clearing the screen when stdout is a terminal) until
// interrupted or the server goes away; each refresh also pulls the
// "metrics" verb's history ring and renders sparkline trend columns, so
// the motion between refreshes is visible without client-side state.
// --sort contention ranks the shared-space shards by their lock
// contention ratio (tables fall back to bytes order).
//
// Exit: 0 on success, 1 on protocol errors, 2 on usage/connection errors.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsHistory.h"
#include "support/JsonValue.h"
#include "support/TableFormat.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lpa;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--top N] "
               "[--sort bytes|answers|contention]\n"
               "          [--watch SECS]\n",
               Argv0);
  return 2;
}

int connectSocket(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

unsigned long long u64Or(const JsonValue &Obj, std::string_view Key) {
  return static_cast<unsigned long long>(Obj.numberOr(Key, 0));
}

std::string flagsCell(const JsonValue &T) {
  const JsonValue *Complete = T.find("complete");
  const JsonValue *Incomplete = T.find("incomplete");
  const JsonValue *Invalidated = T.find("invalidated");
  if (Invalidated && Invalidated->asBool())
    return "invalidated";
  if (Incomplete && Incomplete->asBool())
    return "incomplete";
  if (Complete && Complete->asBool())
    return "complete";
  return "open";
}

/// Renders one lpa.inspect.v1 snapshot as the full report.
void render(const JsonValue &Inspect) {
  const JsonValue *Totals = Inspect.find("totals");
  if (Totals) {
    std::printf("tables: %llu subgoals, %llu answers, %llu bytes | "
                "warm %llu / cold %llu | incomplete %llu, invalidated %llu\n",
                (unsigned long long)u64Or(*Totals, "subgoals"),
                (unsigned long long)u64Or(*Totals, "answers"),
                (unsigned long long)u64Or(*Totals, "table_space_bytes"),
                (unsigned long long)u64Or(*Totals, "warm_hits"),
                (unsigned long long)u64Or(*Totals, "cold_misses"),
                (unsigned long long)u64Or(*Totals, "incomplete_tables"),
                (unsigned long long)u64Or(*Totals, "tables_invalidated"));
  }

  const JsonValue *Dep = Inspect.find("dep_index");
  const JsonValue *Shared = Inspect.find("shared_space");
  const JsonValue *Rec = Inspect.find("recorder");
  std::printf("dep-index: %llu edges / %llu producers / %llu bytes | "
              "shared retired %llu | recorder %llu events (%llu dropped, "
              "%llu dumps)\n\n",
              (unsigned long long)(Dep ? u64Or(*Dep, "edges") : 0),
              (unsigned long long)(Dep ? u64Or(*Dep, "producers") : 0),
              (unsigned long long)(Dep ? u64Or(*Dep, "bytes") : 0),
              (unsigned long long)(Shared ? u64Or(*Shared, "retired") : 0),
              (unsigned long long)(Rec ? u64Or(*Rec, "total") : 0),
              (unsigned long long)(Rec ? u64Or(*Rec, "dropped") : 0),
              (unsigned long long)(Rec ? u64Or(*Rec, "dumps") : 0));

  std::printf("Top tables (sort=%s):\n",
              Inspect.stringOr("sort", "bytes").c_str());
  TextTable Tables;
  Tables.addRow({"Call", "Pred", "Answers", "Bytes", "State"});
  if (const JsonValue *Top = Inspect.find("top_tables"))
    for (const JsonValue &T : Top->items())
      Tables.addRow({T.stringOr("call", "?"), T.stringOr("pred", "?"),
                     TextTable::fmt(u64Or(T, "answers")),
                     TextTable::fmt(u64Or(T, "bytes")), flagsCell(T)});
  std::fputs(Tables.render().c_str(), stdout);

  std::printf("\nPredicates:\n");
  TextTable Preds;
  Preds.addRow({"Pred", "Calls", "Warm", "Cold", "Hit%", "Tables", "Answers",
                "Bytes"});
  if (const JsonValue *Ps = Inspect.find("predicates"))
    for (const JsonValue &P : Ps->items())
      Preds.addRow({P.stringOr("pred", "?"), TextTable::fmt(u64Or(P, "calls")),
                    TextTable::fmt(u64Or(P, "warm_hits")),
                    TextTable::fmt(u64Or(P, "cold_misses")),
                    TextTable::fmt(P.numberOr("warm_hit_rate", 0) * 100.0, 1),
                    TextTable::fmt(u64Or(P, "table_subgoals")),
                    TextTable::fmt(u64Or(P, "table_answers")),
                    TextTable::fmt(u64Or(P, "table_bytes"))});
  std::fputs(Preds.render().c_str(), stdout);

  // Per-shard contention only matters when parallel eval has run; skip
  // the section entirely for a serial session.
  const JsonValue *Shards = Shared ? Shared->find("shards") : nullptr;
  if (Shards && !Shards->items().empty()) {
    std::printf("\nShared-space shards:\n");
    TextTable Sh;
    Sh.addRow({"Shard", "Lookups", "Warm", "Claims", "Retired", "Entries",
               "LockAcq", "Contended", "Cont%", "WaitUs"});
    size_t Idx = 0;
    for (const JsonValue &S : Shards->items()) {
      // The server stamps each shard with its stable index ("shard") so a
      // contention-sorted listing still names the hot shard correctly.
      unsigned long long ShardIdx =
          S.find("shard") ? u64Or(S, "shard") : (unsigned long long)Idx;
      ++Idx;
      Sh.addRow({TextTable::fmt(ShardIdx),
                 TextTable::fmt(u64Or(S, "lookups")),
                 TextTable::fmt(u64Or(S, "warm_hits")),
                 TextTable::fmt(u64Or(S, "claims")),
                 TextTable::fmt(u64Or(S, "retired")),
                 TextTable::fmt(u64Or(S, "entries")),
                 TextTable::fmt(u64Or(S, "lock_acquisitions")),
                 TextTable::fmt(u64Or(S, "lock_contended")),
                 TextTable::fmt(S.numberOr("contention_ratio", 0) * 100.0, 1),
                 TextTable::fmt(double(u64Or(S, "lock_wait_ns")) / 1000.0, 1)});
    }
    std::fputs(Sh.render().c_str(), stdout);
  }
}

/// Renders sparkline trend columns from one lpa.metrics.v1 history ring.
/// Counters show per-interval deltas (what moved since the last sample);
/// gauges show raw values. All-flat series are skipped.
void renderTrends(const JsonValue &Metrics) {
  const JsonValue *Hist = Metrics.find("history");
  if (!Hist || !Hist->isObject())
    return;
  const JsonValue *Names = Hist->find("series");
  const JsonValue *Kinds = Hist->find("kinds");
  const JsonValue *Samples = Hist->find("samples");
  if (!Names || !Kinds || !Samples || Samples->items().size() < 2)
    return;

  TextTable Tab;
  Tab.addRow({"Series", "Now", "Trend"});
  size_t Rows = 0;
  for (size_t I = 0; I < Names->items().size(); ++I) {
    std::vector<uint64_t> Raw;
    Raw.reserve(Samples->items().size());
    for (const JsonValue &S : Samples->items()) {
      const JsonValue *V = S.find("v");
      if (V && V->isArray() && I < V->items().size() &&
          V->items()[I].isNumber())
        Raw.push_back(static_cast<uint64_t>(V->items()[I].asNumber()));
    }
    if (Raw.size() < 2)
      continue;
    bool Counter = Kinds->items()[I].asString() == "counter";
    std::vector<uint64_t> Trend;
    if (Counter) {
      // Per-interval deltas, clamped at zero across resets.
      for (size_t J = 1; J < Raw.size(); ++J)
        Trend.push_back(Raw[J] >= Raw[J - 1] ? Raw[J] - Raw[J - 1] : 0);
    } else {
      Trend = Raw;
    }
    bool Flat = true;
    for (uint64_t V : Trend)
      if (V != (Counter ? 0 : Trend.front())) {
        Flat = false;
        break;
      }
    if (Flat)
      continue;
    Tab.addRow({Names->items()[I].asString(),
                TextTable::fmt((unsigned long long)Raw.back()),
                renderSparkline(Trend)});
    ++Rows;
  }
  if (Rows) {
    std::printf("\nTrends (per %llu ms sample):\n",
                (unsigned long long)Hist->numberOr("interval_ms", 0));
    std::fputs(Tab.render().c_str(), stdout);
  }
}

/// One request/response over the open connection. On success \p Doc holds
/// the parsed response and \p Obj points at its \p Key member. \returns
/// false when the server hung up or the response failed.
bool fetchObject(std::FILE *In, std::FILE *Out, const std::string &Req,
                 const char *Key, JsonValue &Doc, const JsonValue *&Obj) {
  std::fwrite(Req.data(), 1, Req.size(), Out);
  std::fputc('\n', Out);
  std::fflush(Out);

  std::string Resp;
  int C;
  while ((C = std::fgetc(In)) != EOF && C != '\n')
    Resp.push_back(static_cast<char>(C));
  if (Resp.empty()) {
    std::fprintf(stderr, "lpa_top: server closed connection\n");
    return false;
  }

  auto Parsed = JsonValue::parse(Resp);
  if (!Parsed) {
    std::fprintf(stderr, "lpa_top: response is not valid JSON: %s\n",
                 Parsed.getError().str().c_str());
    return false;
  }
  Doc = std::move(*Parsed);
  const JsonValue *Ok = Doc.find("ok");
  if (!Ok || !Ok->asBool()) {
    const JsonValue *Err = Doc.find("error");
    std::fprintf(stderr, "lpa_top: %s failed: %s\n", Key,
                 Err && Err->isString() ? Err->asString().c_str()
                                        : "(no error message)");
    return false;
  }
  Obj = Doc.find(Key);
  if (!Obj || !Obj->isObject()) {
    std::fprintf(stderr, "lpa_top: response has no \"%s\" object\n", Key);
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath;
  unsigned long TopN = 10;
  std::string Sort = "bytes";
  unsigned long WatchSecs = 0;

  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    if (A == "--socket" && I + 1 < argc)
      SocketPath = argv[++I];
    else if (A == "--top" && I + 1 < argc)
      TopN = std::strtoul(argv[++I], nullptr, 10);
    else if (A == "--sort" && I + 1 < argc)
      Sort = argv[++I];
    else if (A == "--watch" && I + 1 < argc)
      WatchSecs = std::strtoul(argv[++I], nullptr, 10);
    else
      return usage(argv[0]);
  }
  if (SocketPath.empty() ||
      (Sort != "bytes" && Sort != "answers" && Sort != "contention"))
    return usage(argv[0]);

  int Fd = connectSocket(SocketPath);
  if (Fd < 0) {
    std::fprintf(stderr, "lpa_top: cannot connect to %s\n",
                 SocketPath.c_str());
    return 2;
  }
  std::FILE *In = ::fdopen(::dup(Fd), "r");
  std::FILE *Out = ::fdopen(Fd, "w");
  if (!In || !Out) {
    std::fprintf(stderr, "lpa_top: fdopen failed\n");
    return 2;
  }

  std::string Req = "{\"op\":\"inspect\",\"top\":" + std::to_string(TopN) +
                    ",\"sort\":\"" + Sort + "\"}";
  // Watch mode adds the history-ring trends: a bounded tail is plenty for
  // a terminal-width sparkline.
  std::string MetricsReq = "{\"op\":\"metrics\",\"max_samples\":40}";
  int Rc = 0;
  for (;;) {
    if (WatchSecs && ::isatty(STDOUT_FILENO))
      std::fputs("\x1b[H\x1b[2J", stdout); // Home + clear, like top(1).
    JsonValue Doc;
    const JsonValue *Inspect = nullptr;
    if (!fetchObject(In, Out, Req, "inspect", Doc, Inspect)) {
      Rc = 1;
      break;
    }
    render(*Inspect);
    if (WatchSecs) {
      JsonValue MDoc;
      const JsonValue *Metrics = nullptr;
      if (!fetchObject(In, Out, MetricsReq, "metrics", MDoc, Metrics)) {
        Rc = 1;
        break;
      }
      renderTrends(*Metrics);
    }
    std::fflush(stdout);
    if (!WatchSecs)
      break;
    ::sleep(static_cast<unsigned>(WatchSecs));
  }

  std::fclose(In);
  std::fclose(Out);
  return Rc;
}
